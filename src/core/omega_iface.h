// The per-process algorithm interface every Ω implementation exposes to the
// drivers. One OmegaProcess instance = the local state + task bodies of one
// process p_i; the shared state lives in the MemoryBackend.
//
// Mapping to the paper (§3.2):
//   leader()          — task T1, invoked synchronously; performs instrumented
//                       shared reads and returns a process identity.
//   task_heartbeat()  — task T2 as an eternal coroutine (the repeat-forever /
//                       while leader()=i loop).
//   task_monitor()    — task T3 as an eternal coroutine; timer-based variants
//                       block on WaitTimerOp, step-counted variants burn
//                       YieldOps.
//   next_timeout()    — the timeout parameter the timer is set to at line 27
//                       (max_k SUSPICIONS[i][k] + 1); pure local computation
//                       on the process's own mirrored row.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/ids.h"
#include "core/proc_task.h"
#include "registers/memory.h"

namespace omega {

/// How the timeout parameter is derived from the process's suspicion row
/// (paper line 27 uses kMaxPlusOne). The exponential policy is an
/// engineering alternative that trades timeout overshoot for a much shorter
/// suspicion warm-up when the timeout unit is small relative to the
/// leader's write cadence (ablation E11).
enum class TimeoutPolicy : std::uint8_t {
  kMaxPlusOne,  ///< x = max_k SUSPICIONS[i][k] + 1 (the paper's rule)
  kDoubling,    ///< x = 2^min(max_k SUSPICIONS[i][k], 24)
};

/// Applies `policy` to a suspicion-row maximum.
std::uint64_t apply_timeout_policy(TimeoutPolicy policy, std::uint64_t row_max);

class OmegaProcess {
 public:
  OmegaProcess(MemoryBackend& mem, ProcessId self)
      : mem_(mem), self_(self), n_(mem.num_processes()) {
    OMEGA_CHECK(self < n_, "process id " << self << " out of range");
  }
  virtual ~OmegaProcess() = default;

  OmegaProcess(const OmegaProcess&) = delete;
  OmegaProcess& operator=(const OmegaProcess&) = delete;

  ProcessId self() const noexcept { return self_; }
  std::uint32_t n() const noexcept { return n_; }

  /// Task T1: returns this process's current leader estimate. Satisfies Ω's
  /// Validity (always a process identity) and Termination (wait-free: a fixed
  /// number of register reads).
  virtual ProcessId leader() = 0;

  /// Task T2 (eternal coroutine).
  virtual ProcTask task_heartbeat() = 0;

  /// Task T3 (eternal coroutine).
  virtual ProcTask task_monitor() = 0;

  /// Timeout parameter for the next timer arming (paper line 27). Only
  /// meaningful for timer-based algorithms; step-counted ones self-pace.
  virtual std::uint64_t next_timeout() const = 0;

  /// Algorithm name for reports ("fig2-write-efficient", ...).
  virtual std::string_view algorithm_name() const = 0;

 protected:
  MemoryBackend& mem_;
  const ProcessId self_;
  const std::uint32_t n_;
};

}  // namespace omega
