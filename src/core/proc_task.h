// Coroutine execution shell for algorithm tasks.
//
// The paper's model charges time to *shared-memory accesses* (assumption AWB1
// bounds the time between two consecutive accesses by p_ℓ to its critical
// registers, §2.3). To be faithful, an algorithm task here is a C++20
// coroutine that suspends at every shared access:
//
//     const std::uint64_t v = co_await ReadOp{cell};
//     co_await WriteOp{cell, v + 1};
//
// A driver (discrete-event simulator in src/sim/, std::thread runtime in
// src/rt/) owns the suspended coroutine, performs the pending operation
// against a MemoryBackend at a time of its choosing, and resumes with the
// result. The same algorithm body therefore runs unmodified under a
// fine-grained adversarial scheduler and on real hardware atomics.
#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>

#include "common/check.h"
#include "registers/cells.h"

namespace omega {

/// Atomic read of one register (resumes with the value read).
struct ReadOp {
  Cell cell;
};

/// Atomic write of one register.
struct WriteOp {
  Cell cell;
  std::uint64_t value = 0;
};

/// Invoke this process's own leader() (the paper's task T1). The driver runs
/// the synchronous, instrumented scan and resumes with the elected id. Used
/// by task T2's `while leader() = i` test (paper line 7).
struct LeaderQueryOp {};

/// Suspend until the process's local timer expires (paper line 13, "when
/// timer_i expires"). The driver arms the timer with the algorithm's
/// next_timeout() through the run's TimerModel.
struct WaitTimerOp {};

/// A scheduling point that performs no shared access: one local step. Used by
/// the §3.5 clock-free variant ("timer_i := timer_i - 1 takes at least one
/// time unit") and by step-counted baselines.
struct YieldOp {};

/// What a suspended task is waiting for.
enum class OpKind : std::uint8_t {
  kNone,
  kRead,
  kWrite,
  kLeaderQuery,
  kWaitTimer,
  kYield,
  kDone,
};

/// Move-only handle to one suspended algorithm task.
///
/// PORTABILITY NOTE: do not write `co_await` inside a loop *condition*
/// (e.g. `while ((co_await Op{}) == x)`), only as a statement/initializer.
/// GCC 12 miscompiles the condition form with await_transform-based
/// promises: the returned coroutine never enters its body (observed with
/// g++ 12.2, any -O level). The statement form is equivalent and compiles
/// correctly; tests/unit/proc_task_test.cpp pins the working patterns.
class ProcTask {
 public:
  struct promise_type {
    OpKind kind = OpKind::kNone;
    Cell cell;
    std::uint64_t value = 0;   ///< operand of a pending write
    std::uint64_t result = 0;  ///< delivered by the driver on resume
    std::exception_ptr eptr;

    ProcTask get_return_object() {
      return ProcTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept { kind = OpKind::kDone; }
    void unhandled_exception() noexcept {
      eptr = std::current_exception();
      kind = OpKind::kDone;
    }

    struct Awaiter {
      promise_type* p;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<>) const noexcept {}
      std::uint64_t await_resume() const noexcept { return p->result; }
    };

    Awaiter await_transform(ReadOp op) noexcept {
      kind = OpKind::kRead;
      cell = op.cell;
      return Awaiter{this};
    }
    Awaiter await_transform(WriteOp op) noexcept {
      kind = OpKind::kWrite;
      cell = op.cell;
      value = op.value;
      return Awaiter{this};
    }
    Awaiter await_transform(LeaderQueryOp) noexcept {
      kind = OpKind::kLeaderQuery;
      return Awaiter{this};
    }
    Awaiter await_transform(WaitTimerOp) noexcept {
      kind = OpKind::kWaitTimer;
      return Awaiter{this};
    }
    Awaiter await_transform(YieldOp) noexcept {
      kind = OpKind::kYield;
      return Awaiter{this};
    }
  };

  ProcTask() noexcept = default;
  explicit ProcTask(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  ProcTask(ProcTask&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  ProcTask& operator=(ProcTask&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ProcTask(const ProcTask&) = delete;
  ProcTask& operator=(const ProcTask&) = delete;
  ~ProcTask() { destroy(); }

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return !h_ || h_.done(); }

  /// The operation this task is currently suspended on.
  OpKind pending() const noexcept {
    if (!h_ || h_.done()) return OpKind::kDone;
    return h_.promise().kind;
  }
  Cell pending_cell() const noexcept { return h_.promise().cell; }
  std::uint64_t pending_value() const noexcept { return h_.promise().value; }

  /// Advances the coroutine to its first suspension point.
  void start() { resume(0); }

  /// Delivers `result` for the pending operation and advances the task to its
  /// next suspension point (or completion). Rethrows any exception escaping
  /// the task body.
  void resume(std::uint64_t result) {
    OMEGA_CHECK(h_ && !h_.done(), "resume on finished task");
    h_.promise().result = result;
    h_.resume();
    if (h_.done() && h_.promise().eptr) {
      std::rethrow_exception(h_.promise().eptr);
    }
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_;
};

}  // namespace omega
