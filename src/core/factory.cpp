#include "core/factory.h"

#include <algorithm>

#include "core/omega_bounded.h"
#include "core/omega_evsync.h"
#include "core/omega_nwnr.h"
#include "core/omega_stepclock.h"
#include "core/omega_write_efficient.h"

namespace omega {

std::uint64_t apply_timeout_policy(TimeoutPolicy policy,
                                   std::uint64_t row_max) {
  switch (policy) {
    case TimeoutPolicy::kMaxPlusOne:
      return row_max + 1;
    case TimeoutPolicy::kDoubling:
      return std::uint64_t{1} << std::min<std::uint64_t>(row_max, 24);
  }
  return row_max + 1;
}

std::string_view algo_name(AlgoKind kind) {
  switch (kind) {
    case AlgoKind::kWriteEfficient:
      return "fig2-write-efficient";
    case AlgoKind::kBounded:
      return "fig5-bounded";
    case AlgoKind::kNwnr:
      return "nwnr-variant";
    case AlgoKind::kStepClock:
      return "stepclock-variant";
    case AlgoKind::kEvSync:
      return "evsync-baseline";
  }
  return "unknown";
}

std::vector<AlgoKind> all_algorithms() {
  return {AlgoKind::kWriteEfficient, AlgoKind::kBounded, AlgoKind::kNwnr,
          AlgoKind::kStepClock, AlgoKind::kEvSync};
}

std::vector<AlgoKind> paper_algorithms() {
  return {AlgoKind::kWriteEfficient, AlgoKind::kBounded};
}

namespace {

std::unique_ptr<MemoryBackend> default_memory(Layout layout, std::uint32_t n) {
  return std::make_unique<SimMemory>(std::move(layout), n);
}

}  // namespace

OmegaInstance make_omega(AlgoKind kind, std::uint32_t n,
                         const std::vector<ProcessId>& initial_candidates,
                         const MemoryFactory& memory_factory,
                         const LayoutExtension& extra_registers) {
  OMEGA_CHECK(n >= 1 && n <= kMaxProcesses, "bad n " << n);
  const MemoryFactory& mf =
      memory_factory ? memory_factory : MemoryFactory{default_memory};

  OmegaInstance inst;
  LayoutBuilder b;
  switch (kind) {
    case AlgoKind::kWriteEfficient: {
      auto shared = OmegaWriteEfficient::Shared::declare(b, n);
      if (extra_registers) extra_registers(b);
      shared.layout = b.build();
      inst.memory = mf(shared.layout, n);
      for (ProcessId i = 0; i < n; ++i) {
        inst.processes.push_back(std::make_unique<OmegaWriteEfficient>(
            *inst.memory, shared, i, initial_candidates));
      }
      break;
    }
    case AlgoKind::kBounded: {
      auto shared = OmegaBounded::Shared::declare(b, n);
      if (extra_registers) extra_registers(b);
      shared.layout = b.build();
      inst.memory = mf(shared.layout, n);
      for (ProcessId i = 0; i < n; ++i) {
        inst.processes.push_back(std::make_unique<OmegaBounded>(
            *inst.memory, shared, i, initial_candidates));
      }
      break;
    }
    case AlgoKind::kNwnr: {
      auto shared = OmegaNwnr::Shared::declare(b, n);
      if (extra_registers) extra_registers(b);
      shared.layout = b.build();
      inst.memory = mf(shared.layout, n);
      for (ProcessId i = 0; i < n; ++i) {
        inst.processes.push_back(std::make_unique<OmegaNwnr>(
            *inst.memory, shared, i, initial_candidates));
      }
      break;
    }
    case AlgoKind::kStepClock: {
      auto shared = OmegaWriteEfficient::Shared::declare(b, n);
      if (extra_registers) extra_registers(b);
      shared.layout = b.build();
      inst.memory = mf(shared.layout, n);
      for (ProcessId i = 0; i < n; ++i) {
        inst.processes.push_back(std::make_unique<OmegaStepClock>(
            *inst.memory, shared, i, initial_candidates));
      }
      break;
    }
    case AlgoKind::kEvSync: {
      auto shared = OmegaEvSync::Shared::declare(b, n);
      if (extra_registers) extra_registers(b);
      shared.layout = b.build();
      inst.memory = mf(shared.layout, n);
      for (ProcessId i = 0; i < n; ++i) {
        inst.processes.push_back(
            std::make_unique<OmegaEvSync>(*inst.memory, shared, i));
      }
      break;
    }
  }
  return inst;
}

OmegaInstance make_omega(AlgoKind kind, std::uint32_t n,
                         const MemoryFactory& memory_factory,
                         const LayoutExtension& extra_registers) {
  std::vector<ProcessId> all;
  all.reserve(n);
  for (ProcessId i = 0; i < n; ++i) all.push_back(i);
  return make_omega(kind, n, all, memory_factory, extra_registers);
}

}  // namespace omega
