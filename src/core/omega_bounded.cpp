#include "core/omega_bounded.h"

namespace omega {

OmegaBounded::Shared OmegaBounded::Shared::declare(LayoutBuilder& b,
                                               std::uint32_t n) {
  Shared s;
  s.suspicions = b.add_matrix("SUSPICIONS", n, n, OwnerRule::kRowOwner,
                              /*critical=*/false);
  // PROGRESS[i][k] is p_i's alive flag toward p_k → row-owned, critical.
  s.progress = b.add_matrix("PROGRESS", n, n, OwnerRule::kRowOwner,
                            /*critical=*/true);
  // LAST[i][k] is p_k's acknowledgment of p_i's flag → *column*-owned
  // (Theorem 7: LAST[ℓ][i] is written by p_i). Not critical.
  s.last = b.add_matrix("LAST", n, n, OwnerRule::kColOwner,
                        /*critical=*/false);
  s.stop = b.add_array("STOP", n, OwnerRule::kRowOwner, /*critical=*/true);
  return s;
}

OmegaBounded::Shared OmegaBounded::Shared::make(std::uint32_t n) {
  LayoutBuilder b;
  Shared s = declare(b, n);
  s.layout = b.build();
  return s;
}

OmegaBounded::OmegaBounded(MemoryBackend& mem, const Shared& shared,
                           ProcessId self,
                           const std::vector<ProcessId>& initial_candidates)
    : OmegaProcess(mem, self),
      g_susp_(shared.suspicions),
      g_prog_(shared.progress),
      g_last_(shared.last),
      g_stop_(shared.stop),
      candidates_(n_, self, initial_candidates),
      last_mirror_(n_, false),
      susp_row_(n_, 0) {
  stop_local_ = mem_.peek(stop_cell(self_)) != 0;
  for (ProcessId k = 0; k < n_; ++k) {
    susp_row_[k] = mem_.peek(susp_cell(self_, k));
    // p_i owns LAST[k][i] for every k; mirror current contents (arbitrary
    // initial values are normalized to booleans).
    last_mirror_[k] = mem_.peek(last_cell(k, self_)) != 0;
  }
}

ProcessId OmegaBounded::leader() {
  // Task T1 is unchanged from Algorithm 1 (lines 1-5).
  std::uint64_t best_count = 0;
  ProcessId best = kNoProcess;
  for (ProcessId k = 0; k < n_; ++k) {
    if (!candidates_.contains(k)) continue;
    std::uint64_t sum = 0;
    for (ProcessId j = 0; j < n_; ++j) {
      sum += mem_.read(self_, susp_cell(j, k));
    }
    if (best == kNoProcess || sum < best_count) {
      best_count = sum;
      best = k;
    }
  }
  OMEGA_CHECK(best != kNoProcess, "empty candidate set at p" << self_);
  return best;
}

ProcTask OmegaBounded::task_heartbeat() {
  // Task T2 with lines 8.R1-8.R3 replacing the counter increment.
  for (;;) {
    for (;;) {
      const auto out = co_await LeaderQueryOp{};  // line 7
      if (static_cast<ProcessId>(out) != self_) break;
      for (ProcessId k = 0; k < n_; ++k) {
        if (k == self_) continue;
        // line 8.R2: PROGRESS[i][k] := ¬LAST[i][k]. Reading LAST[i][k]
        // (owned by p_k) and writing the complement (re)arms the alive
        // signal; if p_k has not acknowledged yet the write is idempotent.
        const bool ack = (co_await ReadOp{last_cell(self_, k)}) != 0;
        co_await WriteOp{progress_cell(self_, k), ack ? 0u : 1u};
      }
      if (stop_local_) {  // line 9
        stop_local_ = false;
        co_await WriteOp{stop_cell(self_), 0};
      }
    }
    if (!stop_local_) {  // line 11
      stop_local_ = true;
      co_await WriteOp{stop_cell(self_), 1};
    }
  }
}

ProcTask OmegaBounded::task_monitor() {
  // Task T3 with lines 16.R1/17.R1/19.R1 replacing the counter comparison.
  for (;;) {
    co_await WaitTimerOp{};
    for (ProcessId k = 0; k < n_; ++k) {
      if (k == self_) continue;
      const std::uint64_t stop_k = co_await ReadOp{stop_cell(k)};    // line 15
      const bool progress_k =                                        // 16.R1
          (co_await ReadOp{progress_cell(k, self_)}) != 0;
      if (progress_k != last_mirror_[k]) {  // line 17.R1: signal pending
        candidates_.insert(k);              // line 18
        last_mirror_[k] = progress_k;       // line 19.R1 (local mirror...)
        co_await WriteOp{last_cell(k, self_), progress_k ? 1u : 0u};  // (...and
        // the shared acknowledgment p_k will read back in its task T2)
      } else if (stop_k != 0) {              // line 20
        candidates_.erase(k);                // line 21
      } else if (candidates_.contains(k)) {  // line 22
        ++susp_row_[k];                      // line 23
        co_await WriteOp{susp_cell(self_, k), susp_row_[k]};
        candidates_.erase(k);                // line 24
      }
    }
  }
}

std::uint64_t OmegaBounded::next_timeout() const {
  std::uint64_t mx = 0;
  for (ProcessId k = 0; k < n_; ++k) mx = std::max(mx, susp_row_[k]);
  return apply_timeout_policy(timeout_policy_, mx);
}

}  // namespace omega
