#include "core/omega_stepclock.h"

namespace omega {

ProcTask OmegaStepClock::task_monitor() {
  for (;;) {
    // Counted busy-wait replacing `co_await WaitTimerOp{}`: x local steps,
    // each of which the model charges at least one time unit.
    for (std::uint64_t x = next_timeout(); x > 0; --x) {
      co_await YieldOp{};
    }
    for (ProcessId k = 0; k < n_; ++k) {
      if (k == self_) continue;
      const std::uint64_t stop_k = co_await ReadOp{stop_cell(k)};
      const std::uint64_t progress_k = co_await ReadOp{progress_cell(k)};
      if (progress_k != last_[k]) {
        candidates_.insert(k);
        last_[k] = progress_k;
      } else if (stop_k != 0) {
        candidates_.erase(k);
      } else if (candidates_.contains(k)) {
        ++susp_row_[k];
        co_await WriteOp{susp_cell(self_, k), susp_row_[k]};
        candidates_.erase(k);
      }
    }
  }
}

}  // namespace omega
