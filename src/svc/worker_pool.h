// The pooled implementation of the Executor seam: N workers cooperatively
// step every election group of their shard. Each worker owns one shard of
// the GroupRegistry (shard = worker index), a private timer wheel, and a
// snapshot of its shard's groups that it refreshes only when the shard's
// version moves.
//
// One sweep of a worker:
//   1. refresh the working set if the shard changed (add/remove);
//   2. advance the timer wheel and deliver the whole batch of due monitor
//      wakeups — each wakeup runs one complete suspicion scan
//      (ProcExecutor::drain_monitor) and re-files the next timeout;
//   3. round-robin the shard's groups, giving every live process a bounded
//      budget of heartbeat/app operations, arming any timer the monitor
//      re-suspended on, and republishing the group's cached leader view —
//      pushing the transition through the registry's epoch listener
//      whenever the published view (and hence the epoch) actually moved.
//
// Operations of different groups never touch shared state (each group has
// its own registers), so workers need no locks on the stepping path.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/health.h"
#include "obs/metrics.h"
#include "svc/group_registry.h"
#include "svc/timer_wheel.h"

namespace omega::svc {

/// Registers the election layer's health rules ("leader-churn": any epoch
/// movement in the trailing window marks the node degraded until elections
/// settle). Called by the serving layer when it builds its health engine.
void register_health_rules(obs::HealthMonitor& hm);

class WorkerPool {
 public:
  WorkerPool(GroupRegistry& registry, const SvcConfig& cfg);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Launches the workers. May be called once.
  void start();
  /// Stops and joins all workers. Idempotent.
  void stop();

  /// Microseconds since start().
  std::int64_t now_us() const;

  SvcStats stats() const;

  /// True iff any group's task threw (model violation); the first message
  /// is kept for diagnosis. The failed group stops being stepped; other
  /// groups are unaffected.
  bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }
  std::string failure_message() const;

 private:
  struct Worker {
    Worker(std::uint32_t slots, std::int64_t slot_us)
        : wheel(slots, slot_us) {}
    std::thread thread;
    TimerWheel wheel;
    std::vector<std::shared_ptr<Group>> groups;  ///< shard working set
    std::uint64_t seen_version = 0;
    bool snapshotted = false;
    std::atomic<std::uint64_t> steps{0};
    std::atomic<std::uint64_t> sweeps{0};
    std::atomic<std::uint64_t> fires{0};
    /// Current adaptive sleep (== cfg.pace_us unless backed off).
    std::atomic<std::int64_t> pace_us{0};
  };

  void run_worker(std::uint32_t w);
  void mark_failed(Group& group, const char* what);

  GroupRegistry& registry_;
  SvcConfig cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> failed_{false};
  mutable std::mutex failure_mutex_;
  std::string failure_message_;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_time_{};

  /// obs instruments, resolved once so the sweep loop never touches the
  /// registry lock. Counters are bumped with per-sweep batch totals.
  obs::Counter* steps_ctr_ = nullptr;    ///< svc.steps
  obs::Counter* sweeps_ctr_ = nullptr;   ///< svc.sweeps
  obs::Counter* fires_ctr_ = nullptr;    ///< svc.timer_fires
  obs::Counter* epochs_ctr_ = nullptr;   ///< svc.epoch_changes
  obs::Histogram* sweep_hist_ = nullptr;  ///< svc.sweep_ns
  std::uint64_t pace_gauge_id_ = 0;       ///< svc.max_pace_us
};

}  // namespace omega::svc
