// Epoch-validated leader cache entry. The query frontend answers leader()
// from this single word; the owning shard worker republishes it whenever the
// group's agreed view changes. Packing (epoch << 32 | leader) into one
// atomic makes a read one uncontended load — queries never observe a torn
// (leader, epoch) pair and never touch the election's registers.
#pragma once

#include <atomic>
#include <cstdint>

#include "svc/svc_types.h"

namespace omega::svc {

// Packing: the low byte holds the leader (group sizes are capped at 64
// processes; 0xff encodes kNoProcess), the remaining 56 bits hold the
// epoch. 2^56 view changes cannot be exhausted in practice, so the fencing
// token never wraps back onto a previously issued value.
class LeaderCacheEntry {
 public:
  /// Query-side: one acquire load.
  LeaderView load() const {
    const std::uint64_t p = packed_.load(std::memory_order_acquire);
    const std::uint8_t raw = static_cast<std::uint8_t>(p & 0xffu);
    return LeaderView{raw == kNoLeaderByte ? kNoProcess : ProcessId{raw},
                      p >> 8};
  }

  /// Publisher-side (single writer: the group's shard worker). Bumps the
  /// epoch iff the leader actually changed, so an unchanged view costs no
  /// store and cached fencing tokens stay valid across quiet sweeps.
  /// Returns true when a new epoch was published.
  bool publish(ProcessId leader) {
    const std::uint8_t raw =
        leader == kNoProcess ? kNoLeaderByte : static_cast<std::uint8_t>(leader);
    const std::uint64_t p = packed_.load(std::memory_order_relaxed);
    if (static_cast<std::uint8_t>(p & 0xffu) == raw) return false;
    const std::uint64_t epoch = (p >> 8) + 1;
    packed_.store((epoch << 8) | raw, std::memory_order_release);
    return true;
  }

 private:
  static constexpr std::uint8_t kNoLeaderByte = 0xff;
  std::atomic<std::uint64_t> packed_{kNoLeaderByte};  // epoch 0, no leader
};

}  // namespace omega::svc
