#include "svc/multigroup_service.h"

#include <thread>

namespace omega::svc {

MultiGroupLeaderService::MultiGroupLeaderService(SvcConfig cfg)
    : cfg_(cfg),
      registry_(cfg_.workers, cfg_.tick_us,
                [this] { return pool_.now_us(); }),
      pool_(registry_, cfg_) {}

MultiGroupLeaderService::~MultiGroupLeaderService() { stop(); }

void MultiGroupLeaderService::add_group(GroupId gid, const GroupSpec& spec) {
  registry_.add(gid, spec);
}

bool MultiGroupLeaderService::remove_group(GroupId gid) {
  return registry_.remove(gid);
}

void MultiGroupLeaderService::start() { pool_.start(); }

void MultiGroupLeaderService::stop() { pool_.stop(); }

std::shared_ptr<Group> MultiGroupLeaderService::find_checked(
    GroupId gid) const {
  auto group = registry_.find(gid);
  OMEGA_CHECK(group != nullptr, "unknown group id " << gid);
  return group;
}

LeaderView MultiGroupLeaderService::leader(GroupId gid) const {
  return find_checked(gid)->cache.load();
}

bool MultiGroupLeaderService::try_leader(GroupId gid, LeaderView& out) const {
  const auto group = registry_.find(gid);
  if (!group) return false;
  out = group->cache.load();
  return true;
}

void MultiGroupLeaderService::crash(GroupId gid, ProcessId pid) {
  auto group = find_checked(gid);
  OMEGA_CHECK(pid < group->spec.n,
              "bad pid " << pid << " for group " << gid);
  OMEGA_CHECK(group->execs[pid] != nullptr,
              "pid " << pid << " of group " << gid
                     << " is hosted on another node; crash it there");
  group->execs[pid]->crash();
}

GroupStatus MultiGroupLeaderService::status(GroupId gid) const {
  auto group = find_checked(gid);
  GroupStatus s;
  s.view = group->cache.load();
  s.local_views.reserve(group->spec.n);
  s.crashed.reserve(group->spec.n);
  for (const auto& ex : group->execs) {
    // Remote replicas report "never sampled / not crashed" — this node
    // has no executor to ask.
    s.local_views.push_back(ex ? ex->last_leader() : kNoProcess);
    s.crashed.push_back(ex ? ex->crashed() : false);
  }
  s.failed = group->failed.load(std::memory_order_acquire);
  return s;
}

ProcessId MultiGroupLeaderService::await_leader(GroupId gid,
                                               std::int64_t timeout_us) const {
  auto group = find_checked(gid);
  const std::int64_t deadline = pool_.now_us() + timeout_us;
  for (;;) {
    const LeaderView v = group->cache.load();
    if (v.leader != kNoProcess) return v.leader;
    if (pool_.now_us() >= deadline) return kNoProcess;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

}  // namespace omega::svc
