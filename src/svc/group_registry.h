// GroupRegistry: owner of every election group in the service. Groups are
// hash-sharded by GroupId onto a fixed number of shards (one per worker);
// membership changes are mutex-protected and version-stamped per shard so
// workers can refresh their working set only when something changed, while
// the query frontend resolves GroupId → Group with one short lock.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "core/factory.h"
#include "rt/proc_executor.h"
#include "svc/leader_cache.h"
#include "svc/svc_types.h"

namespace omega::svc {

/// One election group: a complete Ω instance (layout + atomic registers +
/// n processes) plus the per-process executors that step it and the cached
/// leader view the frontend serves. Stepping is exclusive to the owning
/// shard's worker; everything observable cross-thread is atomic.
struct Group {
  /// `clock` (optional) timestamps the group's instrumentation events; it
  /// is installed before the group becomes visible to any worker.
  Group(GroupId id, const GroupSpec& spec, std::int64_t tick_us,
        const std::function<SimTime()>& clock);

  const GroupId id;
  const GroupSpec spec;
  OmegaInstance inst;
  std::vector<std::unique_ptr<ProcExecutor>> execs;
  LeaderCacheEntry cache;
  std::atomic<bool> retired{false};  ///< unlinked; worker drops it on sight
  std::atomic<bool> failed{false};   ///< a task threw (model violation)

  /// The group's agreed view: the id every live process's last leader()
  /// output names, provided that id is itself live; kNoProcess while the
  /// group disagrees (anarchy or mid-fail-over).
  ProcessId agreed() const;
};

class GroupRegistry {
 public:
  /// `num_shards` — fixed at construction (one shard per worker);
  /// `tick_us` — timeout unit handed to every group's executors;
  /// `clock` — optional instrumentation clock installed into every group.
  GroupRegistry(std::uint32_t num_shards, std::int64_t tick_us,
                std::function<SimTime()> clock = {});

  /// Deterministic home shard of a group id (stable across add/remove).
  std::uint32_t shard_of(GroupId gid) const noexcept;
  std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Creates and registers a group. Throws InvariantViolation on a
  /// duplicate id.
  std::shared_ptr<Group> add(GroupId gid, const GroupSpec& spec);

  /// Marks the group retired and unlinks it; the owning worker drops its
  /// reference at the next sweep. Returns false if the id is unknown.
  bool remove(GroupId gid);

  /// Query-frontend lookup; nullptr if absent. One short shard lock.
  std::shared_ptr<Group> find(GroupId gid) const;

  std::size_t size() const;

  /// Bumped on every membership change of the shard; workers compare
  /// against their last seen value to decide whether to re-snapshot.
  std::uint64_t shard_version(std::uint32_t shard) const;

  /// Copies the shard's current groups into `out` (replacing contents).
  void snapshot_shard(std::uint32_t shard,
                      std::vector<std::shared_ptr<Group>>& out) const;

  // --- epoch-change seam ---------------------------------------------------

  /// Installs (or clears, with an empty function) the listener that
  /// `notify_epoch_change` fans out to. Safe to call at any time, including
  /// while the worker pool is running — and it is a barrier: by the time
  /// it returns, no in-flight invocation of the *previous* listener is
  /// still running, so a consumer may tear down the state its callback
  /// captured right after clearing it.
  void set_epoch_listener(EpochListener listener);

  /// Called by the shard worker that just published a new cached view for
  /// `gid`. Invokes the installed listener (if any) under a shared lock
  /// (concurrent notifies don't serialize; only a listener swap excludes
  /// them); exceptions from the listener are treated as a model violation
  /// and propagate to the worker's failure handling.
  void notify_epoch_change(GroupId gid, const LeaderView& view) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<GroupId, std::shared_ptr<Group>> groups;
    std::atomic<std::uint64_t> version{0};
  };

  std::vector<Shard> shards_;  ///< sized once; Shard is pinned (mutex)
  std::int64_t tick_us_;
  std::function<SimTime()> clock_;
  std::atomic<std::size_t> total_{0};

  /// Reader/writer split: notifiers hold the shared side across the
  /// callback so a swap (unique side) doubles as a completion barrier.
  mutable std::shared_mutex listener_mu_;
  EpochListener listener_;
};

}  // namespace omega::svc
