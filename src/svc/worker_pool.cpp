#include "svc/worker_pool.h"

#include <algorithm>
#include <unordered_map>

#include "obs/flight_recorder.h"

#ifdef __linux__
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace omega::svc {

WorkerPool::WorkerPool(GroupRegistry& registry, const SvcConfig& cfg)
    : registry_(registry), cfg_(cfg) {
  OMEGA_CHECK(cfg_.workers >= 1, "pool needs at least one worker");
  OMEGA_CHECK(cfg_.workers == registry_.num_shards(),
              "worker count " << cfg_.workers << " != shard count "
                              << registry_.num_shards());
  OMEGA_CHECK(cfg_.ops_per_sweep >= 1, "ops_per_sweep must be >= 1");
  workers_.reserve(cfg_.workers);
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    workers_.push_back(
        std::make_unique<Worker>(cfg_.wheel_slots, cfg_.wheel_slot_us));
  }
  // The clock starts at construction, not at start(): now_us() must be a
  // consistent timebase even for await/stats calls that race start().
  start_time_ = std::chrono::steady_clock::now();
  steps_ctr_ = &obs::counter("svc.steps");
  sweeps_ctr_ = &obs::counter("svc.sweeps");
  fires_ctr_ = &obs::counter("svc.timer_fires");
  epochs_ctr_ = &obs::counter("svc.epoch_changes");
  sweep_hist_ = &obs::histogram("svc.sweep_ns");
  pace_gauge_id_ =
      obs::Registry::instance().register_gauge("svc.max_pace_us", [this] {
        std::int64_t deepest = 0;
        for (const auto& w : workers_) {
          deepest = std::max(deepest,
                             w->pace_us.load(std::memory_order_relaxed));
        }
        return deepest;
      });
}

WorkerPool::~WorkerPool() {
  stop();
  obs::Registry::instance().unregister_gauge(pace_gauge_id_);
}

std::int64_t WorkerPool::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_time_)
      .count();
}

void WorkerPool::start() {
  OMEGA_CHECK(!started_, "start() called twice");
  started_ = true;
  for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { run_worker(w); });
  }
}

void WorkerPool::stop() {
  if (!started_) return;
  stop_flag_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

SvcStats WorkerPool::stats() const {
  SvcStats s;
  for (const auto& w : workers_) {
    s.steps += w->steps.load(std::memory_order_relaxed);
    s.sweeps += w->sweeps.load(std::memory_order_relaxed);
    s.timer_fires += w->fires.load(std::memory_order_relaxed);
    s.max_pace_us = std::max(s.max_pace_us,
                             w->pace_us.load(std::memory_order_relaxed));
  }
  s.groups = registry_.size();
  return s;
}

std::string WorkerPool::failure_message() const {
  std::lock_guard<std::mutex> lock(failure_mutex_);
  return failure_message_;
}

void WorkerPool::mark_failed(Group& group, const char* what) {
  group.failed.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(failure_mutex_);
  if (!failed_.exchange(true, std::memory_order_acq_rel)) {
    failure_message_ = what;
  }
}

void WorkerPool::run_worker(std::uint32_t w) {
#ifdef __linux__
  if (cfg_.worker_nice > 0) {
    // Per-thread niceness: only this worker is deprioritized, not the
    // process. Raising one's own niceness cannot fail for permissions.
    (void)setpriority(PRIO_PROCESS,
                      static_cast<id_t>(syscall(SYS_gettid)),
                      cfg_.worker_nice);
  }
#endif
  Worker& me = *workers_[w];
  std::vector<TimerWheel::Due> due;
  std::unordered_map<GroupId, Group*> index;
  std::uint64_t steps_batch = 0;
  std::uint64_t fires_batch = 0;
  // Adaptive pace state: the current sleep, doubling toward max_pace_us
  // across quiet sweeps and snapping back to pace_us on any harvest.
  const bool adaptive = cfg_.max_pace_us > cfg_.pace_us;
  std::int64_t pace = cfg_.pace_us;

  while (!stop_flag_.load(std::memory_order_acquire)) {
    const auto sweep_start = std::chrono::steady_clock::now();
    // Quiet until proven busy: timer fires, epoch movement, or pump
    // traffic below all count as harvest; bare heartbeat/maintenance
    // steps do not (they are exactly the spin worth backing off).
    bool harvested = false;
    // 1. Refresh the working set if the shard membership changed.
    const std::uint64_t version = registry_.shard_version(w);
    if (!me.snapshotted || version != me.seen_version) {
      me.seen_version = version;
      me.snapshotted = true;
      registry_.snapshot_shard(w, me.groups);
      index.clear();
      index.reserve(me.groups.size());
      for (const auto& g : me.groups) index.emplace(g->id, g.get());
    }

    const std::int64_t now = now_us();

    // 2. Batched monitor wakeups: one wheel advance delivers every due
    // timer of the shard; each runs a full suspicion scan and re-arms.
    due.clear();
    me.wheel.advance(now, due);
    for (const auto& d : due) {
      const auto it = index.find(d.gid);
      if (it == index.end()) continue;  // group removed since it was filed
      Group& g = *it->second;
      if (g.retired.load(std::memory_order_acquire) ||
          g.failed.load(std::memory_order_acquire)) {
        continue;
      }
      // A stale entry can name a group that was removed and re-added under
      // the same id with fewer processes; its pid may be out of range (or
      // hosted on another node under a different locality mask).
      if (d.pid >= g.spec.n || !g.execs[d.pid]) continue;
      ProcExecutor& ex = *g.execs[d.pid];
      try {
        const std::uint32_t scan_cap = 4 * g.spec.n + 8;
        const std::uint32_t ops = ex.drain_monitor(now, scan_cap);
        if (ops > 0) {
          ++fires_batch;
          steps_batch += ops;
          harvested = true;
        }
        const std::int64_t deadline = ex.poll_timer(now);
        if (deadline != kNoDeadline) me.wheel.insert(deadline, g.id, d.pid);
      } catch (const std::exception& e) {
        mark_failed(g, e.what());
      }
    }

    // 3. Cooperative heartbeat/app stepping with a per-process budget,
    // timer arming for freshly suspended monitors, and cache publication.
    for (const auto& gp : me.groups) {
      Group& g = *gp;
      if (g.retired.load(std::memory_order_acquire) ||
          g.failed.load(std::memory_order_acquire)) {
        continue;
      }
      try {
        for (std::uint32_t pid = 0; pid < g.spec.n; ++pid) {
          if (!g.execs[pid]) continue;  // hosted on another node
          ProcExecutor& ex = *g.execs[pid];
          if (ex.crashed()) continue;
          for (std::uint32_t k = 0; k < cfg_.ops_per_sweep; ++k) {
            if (!ex.step_runnable(now)) break;
            ++steps_batch;
          }
          const std::int64_t deadline = ex.poll_timer(now);
          if (deadline != kNoDeadline) me.wheel.insert(deadline, g.id, pid);
        }
        // publish() returning true means the epoch just moved: push the
        // transition through the registry's listener seam (watch hub,
        // benches) instead of making consumers poll the cache.
        if (g.cache.publish(g.agreed())) {
          const LeaderView view = g.cache.load();
          obs::trace(obs::TraceEvent::kEpochChange, g.id, view.epoch);
          epochs_ctr_->add(1);
          registry_.notify_epoch_change(g.id, view);
          harvested = true;
        }
        // Application pump (e.g. the SMR log): runs on this worker — the
        // executors' owner thread — so it may spawn/reap app tasks. Its
        // return value is the pump-traffic half of the pacing signal.
        if (g.spec.pump && g.spec.pump->on_sweep(g, now)) harvested = true;
      } catch (const std::exception& e) {
        mark_failed(g, e.what());
      }
    }

    me.steps.fetch_add(steps_batch, std::memory_order_relaxed);
    me.fires.fetch_add(fires_batch, std::memory_order_relaxed);
    // One batched add per sweep into the obs registry — the counters cost
    // the hot loop two relaxed fetch_adds, not one per step.
    if (steps_batch > 0) steps_ctr_->add(steps_batch);
    if (fires_batch > 0) fires_ctr_->add(fires_batch);
    sweeps_ctr_->add(1);
    steps_batch = 0;
    fires_batch = 0;
    me.sweeps.fetch_add(1, std::memory_order_relaxed);
    sweep_hist_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - sweep_start)
            .count()));

    if (adaptive) {
      if (harvested) {
        pace = cfg_.pace_us;
      } else {
        pace = pace > 0 ? std::min<std::int64_t>(pace * 2, cfg_.max_pace_us)
                        : std::min<std::int64_t>(64, cfg_.max_pace_us);
      }
      me.pace_us.store(pace, std::memory_order_relaxed);
    }
    if (pace > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(pace));
    }
  }
}

void register_health_rules(obs::HealthMonitor& hm) {
  // Leader churn: the epoch counter only moves when a group's published
  // view changes, so ANY movement in the trailing window means elections
  // are (re)running — the window during which appends bounce with
  // kNotLeader. degrade_after=1 publishes on the first post-churn tick
  // (this is the deterministic failover signal bench_e16 gates on);
  // recover_after keeps it up until the view has been stable for a full
  // second on top of the 5s window.
  hm.add_rule(obs::HealthRule{
      "leader-churn",
      [](const obs::TimeSeries& ts, std::string* reason) {
        const std::int64_t d = ts.delta("svc.epoch_changes", 5'000);
        if (d <= 0) return obs::Health::kOk;
        *reason = std::to_string(d) + " epoch change(s) in 5s";
        return obs::Health::kDegraded;
      },
      /*degrade_after=*/1,
      /*recover_after=*/4});
}

}  // namespace omega::svc
