// MultiGroupLeaderService: the facade of the src/svc subsystem. One object
// serves leader elections for thousands of independent groups — the shape
// of a production lease manager (à la Chubby/etcd lease tables), where each
// lease/partition/lock-namespace runs its own Ω instance and clients only
// ever ask "who leads group G right now?".
//
//   MultiGroupLeaderService svc;            // 4 workers by default
//   for (auto gid : my_leases) svc.add_group(gid);
//   svc.start();
//   auto view = svc.leader(my_leases[0]);   // cached: one map lookup + load
//
// The answer carries an epoch that increments on every change of the
// group's agreed view, so it doubles as a fencing token: an action guarded
// by epoch E is safe to apply only while leader(gid).epoch == E.
//
// Single-group deployments keep the thread-per-process LeaderService
// (rt/leader_service.h); that class delegates fleets to this one.
#pragma once

#include <memory>

#include "svc/group_registry.h"
#include "svc/worker_pool.h"

namespace omega::svc {

class MultiGroupLeaderService {
 public:
  explicit MultiGroupLeaderService(SvcConfig cfg = {});
  ~MultiGroupLeaderService();

  MultiGroupLeaderService(const MultiGroupLeaderService&) = delete;
  MultiGroupLeaderService& operator=(const MultiGroupLeaderService&) = delete;

  // --- registration (allowed before and while running) -------------------

  /// Creates group `gid` (throws InvariantViolation on a duplicate id).
  /// The group starts electing at the next sweep of its shard's worker.
  void add_group(GroupId gid, const GroupSpec& spec = {});

  /// Retires group `gid`; its worker drops it at the next sweep. Returns
  /// false if the id is unknown.
  bool remove_group(GroupId gid);

  bool has_group(GroupId gid) const { return registry_.find(gid) != nullptr; }
  std::size_t num_groups() const { return registry_.size(); }
  std::uint32_t workers() const { return cfg_.workers; }
  std::uint32_t shard_of(GroupId gid) const { return registry_.shard_of(gid); }

  // --- lifecycle ---------------------------------------------------------

  void start();
  void stop();

  // --- query frontend (hot path) -----------------------------------------

  /// Cached leader view of group `gid`: one shard-map lookup plus one
  /// atomic load — never touches the group's registers. Throws
  /// InvariantViolation for an unknown id.
  LeaderView leader(GroupId gid) const;

  /// Non-throwing variant for serving frontends: returns false (leaving
  /// `out` untouched) when `gid` is unknown instead of throwing, so a
  /// remote query for a bogus id costs no exception on the server.
  bool try_leader(GroupId gid, LeaderView& out) const;

  /// Installs (or clears) the epoch-change push listener; see
  /// GroupRegistry::set_epoch_listener for the threading contract.
  void set_epoch_listener(EpochListener listener) {
    registry_.set_epoch_listener(std::move(listener));
  }

  // --- control plane ------------------------------------------------------

  /// Simulated crash of process `pid` in group `gid`.
  void crash(GroupId gid, ProcessId pid);

  GroupStatus status(GroupId gid) const;

  /// Blocks until group `gid` has an agreed cached leader, or `timeout_us`
  /// elapses. Returns the leader, or kNoProcess on timeout.
  ProcessId await_leader(GroupId gid, std::int64_t timeout_us) const;

  SvcStats stats() const { return pool_.stats(); }
  std::int64_t now_us() const { return pool_.now_us(); }
  bool failed() const noexcept { return pool_.failed(); }
  std::string failure_message() const { return pool_.failure_message(); }

 private:
  std::shared_ptr<Group> find_checked(GroupId gid) const;

  SvcConfig cfg_;
  GroupRegistry registry_;
  WorkerPool pool_;
};

}  // namespace omega::svc
