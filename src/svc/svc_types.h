// Shared vocabulary of the multi-group leader service (src/svc): a runtime
// that multiplexes thousands of independent Ω election groups — one
// per lock namespace, lease table, partition, ... — onto a fixed pool of
// worker threads, and answers leader() queries from an epoch-validated
// cache without touching the election hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "core/factory.h"

namespace omega::svc {

/// Application-chosen key of one election group (a lease id, a partition
/// number, a hash of a lock namespace, ...). Groups are hash-sharded onto
/// workers by this id.
using GroupId = std::uint64_t;

struct Group;  // defined in group_registry.h

/// Seam for application subsystems that ride a group's executors (the
/// replicated log in src/smr is the canonical one). attach() is invoked
/// from the Group constructor — after the Ω instance and executors exist,
/// before the group is visible to any worker — so the pump can bind its
/// registers and stash the group. on_sweep() runs on the owning shard
/// worker once per sweep, after the group was stepped; that worker is the
/// executors' owner thread, so the pump may spawn app tasks and reap
/// finished ones there. Its return value is the adaptive-pacing traffic
/// signal: true when the sweep found application work (commits harvested,
/// commands queued or in flight), false for a pure-maintenance sweep —
/// see SvcConfig::max_pace_us. Exceptions escaping on_sweep are model
/// violations and fail the group like any task throw.
class GroupPump {
 public:
  virtual ~GroupPump() = default;
  virtual void attach(Group& g) = 0;
  virtual bool on_sweep(Group& g, std::int64_t now_us) = 0;
};

/// Per-group instantiation parameters.
struct GroupSpec {
  AlgoKind algo = AlgoKind::kWriteEfficient;
  std::uint32_t n = 3;  ///< processes in this group's election
  /// Optional application registers declared into the group's memory (the
  /// factory's LayoutExtension hook), e.g. a replicated log's slots.
  LayoutExtension extra_registers{};
  /// Optional application pump stepped by the owning worker (see above).
  std::shared_ptr<GroupPump> pump{};
  /// Replicas hosted by THIS process (bit p set ⇒ replica p executes
  /// here). 0 means "all local" — the classic single-process deployment.
  /// With remote replicas, only local ones get executors (the rest are
  /// nullptr slots in Group::execs), the group's memory should be a
  /// MirroredMemory wired to a push transport (see memory_factory), and
  /// agreement is judged over the local replicas' Ω views.
  std::uint64_t local_mask = 0;
  /// Optional storage override for the group's registers (defaults to
  /// rt::AtomicMemory). The multi-node runtime installs a factory that
  /// builds a MirroredMemory and registers it with the mirror transport.
  MemoryFactory memory_factory{};

  bool is_local(ProcessId p) const noexcept {
    return local_mask_covers(local_mask, p);
  }
};

/// Service-wide tuning knobs.
struct SvcConfig {
  /// Worker threads; groups are sharded across them (shard = worker).
  std::uint32_t workers = 4;
  /// Microseconds per timeout unit for every group's monitor timer.
  std::int64_t tick_us = 200;
  /// Timer-wheel slot granularity; due wakeups are batched per slot.
  std::int64_t wheel_slot_us = 256;
  /// Timer-wheel slot count (one wheel per worker).
  std::uint32_t wheel_slots = 256;
  /// Heartbeat/app operation budget per process per sweep; caps how long a
  /// single group can hold a worker before its shard-mates get CPU.
  std::uint32_t ops_per_sweep = 8;
  /// Optional sleep between sweeps (microseconds); 0 = free-running. On
  /// boxes with fewer cores than workers a small pace keeps the query
  /// frontend and control threads responsive.
  std::int64_t pace_us = 0;
  /// Adaptive sweep pacing: when > pace_us, a sweep that harvests nothing
  /// — no timer fires, no epoch movement, no application-pump traffic —
  /// doubles the worker's sleep from pace_us up to this cap, and any
  /// harvest snaps it back to pace_us. Converged idle groups then cost
  /// heartbeat writes at the backed-off cadence instead of a spinning
  /// core (the sweep spin costs ~35% of batched SMR throughput on a
  /// single-core box), while traffic keeps the fast pace. Pick it with
  /// margin under the monitor timeout (tick_us × the algorithm's timeout
  /// value), or the slowed heartbeats will look like crashes. 0 disables
  /// (fixed pace_us, the pre-adaptive behaviour).
  std::int64_t max_pace_us = 0;
  /// Niceness the workers give themselves at start (0 = inherit). Once a
  /// fleet is converged, stepping is pure maintenance: on machines where
  /// the pool shares cores with serving threads (the net front-end, an
  /// application), a high niceness keeps sweep bursts from sitting in
  /// front of latency-sensitive work — the scheduler preempts the worker
  /// almost immediately instead of letting it finish its timeslice.
  /// Raising one's own niceness needs no privilege. Linux-only; ignored
  /// elsewhere. Pick timeouts (`tick_us`) with enough margin over the
  /// *deprioritized* sweep interval, or monitors will suspect live peers.
  int worker_nice = 0;
};

/// One answer from the query frontend. `epoch` increments every time the
/// cached leader view of the group changes (including changes to "no
/// agreement"), so lease holders can detect staleness with one compare:
/// a fencing token obtained at epoch E is valid iff the current epoch is
/// still E.
struct LeaderView {
  ProcessId leader = kNoProcess;  ///< kNoProcess while the group disagrees
  std::uint64_t epoch = 0;

  friend bool operator==(const LeaderView&, const LeaderView&) = default;
};

/// Push seam for epoch transitions: invoked by the owning shard worker
/// right after it publishes a new cached view (i.e. `epoch` just moved).
/// Consumers (the network watch hub, benches) get transitions pushed to
/// them instead of polling `leader()`. The callback runs on the worker's
/// stepping path, so it must be cheap and must never block on work that
/// itself waits for this worker — hand off to another thread for anything
/// heavier than enqueue+wake.
using EpochListener = std::function<void(GroupId, const LeaderView&)>;

/// Point-in-time observation of one group (control-plane, not hot path).
struct GroupStatus {
  LeaderView view;
  std::vector<ProcessId> local_views;  ///< each process's own leader estimate
  std::vector<bool> crashed;           ///< per-process crash flags
  bool failed = false;  ///< a task of this group threw (model violation)
};

/// Aggregate runtime counters across all workers.
struct SvcStats {
  std::uint64_t steps = 0;        ///< operations executed (all tasks)
  std::uint64_t sweeps = 0;       ///< full shard passes
  std::uint64_t timer_fires = 0;  ///< monitor wakeups delivered
  std::uint64_t groups = 0;       ///< groups currently registered
  std::int64_t max_pace_us = 0;   ///< deepest current adaptive back-off
};

}  // namespace omega::svc
