// Hashed timer wheel. Each worker owns one and files every armed monitor
// timeout of its shard into it, so a sweep discovers all due wakeups by
// walking only the slots the cursor passed — O(due) instead of O(groups) —
// and delivers them as one batch.
//
// Single-threaded by design (per-worker, no locks). Entries whose deadline
// lies more than one wheel revolution ahead stay in their slot and are
// re-examined each pass of the cursor (the classic hashed-wheel overflow
// rule); with monitor timeouts of a few ticks this is rare.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "svc/svc_types.h"

namespace omega::svc {

class TimerWheel {
 public:
  /// A due wakeup: process `pid` of group `gid`.
  struct Due {
    GroupId gid = 0;
    ProcessId pid = 0;
  };

  /// `slots` buckets of `slot_us` microseconds each; the wheel spans
  /// slots * slot_us before entries wrap onto the overflow rule.
  TimerWheel(std::uint32_t slots, std::int64_t slot_us);

  /// Files a wakeup for (gid, pid) at `deadline_us`. Deadlines already in
  /// the past land in the cursor's current slot and fire on the next
  /// advance.
  void insert(std::int64_t deadline_us, GroupId gid, ProcessId pid);

  /// Moves the cursor forward to `now_us`, appending every entry whose
  /// deadline has passed to `out` (existing contents are preserved).
  void advance(std::int64_t now_us, std::vector<Due>& out);

  /// Entries currently filed (due-but-not-yet-advanced included).
  std::size_t size() const noexcept { return size_; }

  std::int64_t span_us() const noexcept {
    return static_cast<std::int64_t>(slots_.size()) * slot_us_;
  }

 private:
  struct Entry {
    std::int64_t deadline_us = 0;
    GroupId gid = 0;
    ProcessId pid = 0;
  };

  std::size_t slot_of(std::int64_t deadline_us) const {
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(deadline_us / slot_us_) % slots_.size());
  }

  std::vector<std::vector<Entry>> slots_;
  std::int64_t slot_us_;
  std::int64_t cursor_us_ = 0;  ///< everything before this has been swept
  std::size_t size_ = 0;
};

}  // namespace omega::svc
