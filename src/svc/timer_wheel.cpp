#include "svc/timer_wheel.h"

#include <algorithm>

namespace omega::svc {

TimerWheel::TimerWheel(std::uint32_t slots, std::int64_t slot_us)
    : slots_(slots), slot_us_(slot_us) {
  OMEGA_CHECK(slots >= 2, "wheel needs at least 2 slots");
  OMEGA_CHECK(slot_us >= 1, "wheel slot must be >= 1us");
}

void TimerWheel::insert(std::int64_t deadline_us, GroupId gid, ProcessId pid) {
  // A deadline behind the cursor would land in a slot the cursor only
  // reaches after a full revolution; clamp it into the cursor's slot so it
  // fires on the next advance instead.
  const std::int64_t at = std::max(deadline_us, cursor_us_);
  slots_[slot_of(at)].push_back(Entry{deadline_us, gid, pid});
  ++size_;
}

void TimerWheel::advance(std::int64_t now_us, std::vector<Due>& out) {
  if (now_us < cursor_us_ || size_ == 0) {
    cursor_us_ = std::max(cursor_us_, now_us);
    return;
  }
  const std::int64_t nslots = static_cast<std::int64_t>(slots_.size());
  const std::int64_t first = cursor_us_ / slot_us_;
  const std::int64_t last = now_us / slot_us_;
  // The cursor's own slot is re-visited on every advance (entries due later
  // within the current slot must still fire); a jump beyond one revolution
  // degenerates to a full sweep.
  const std::int64_t visits = std::min(last - first + 1, nslots);
  for (std::int64_t i = 0; i < visits; ++i) {
    auto& bucket = slots_[static_cast<std::size_t>(
        static_cast<std::uint64_t>(first + i) % slots_.size())];
    for (std::size_t j = 0; j < bucket.size();) {
      if (bucket[j].deadline_us <= now_us) {
        out.push_back(Due{bucket[j].gid, bucket[j].pid});
        bucket[j] = bucket.back();
        bucket.pop_back();
        --size_;
      } else {
        ++j;
      }
    }
  }
  cursor_us_ = now_us;
}

}  // namespace omega::svc
