#include "svc/group_registry.h"

#include "common/rng.h"
#include "rt/atomic_memory.h"

namespace omega::svc {

Group::Group(GroupId id_, const GroupSpec& spec_, std::int64_t tick_us,
             const std::function<SimTime()>& clock)
    : id(id_), spec(spec_) {
  OMEGA_CHECK(spec.n >= 1 && spec.n <= 64,
              "group " << id << ": svc supports 1..64 processes, got "
                       << spec.n);
  bool any_local = false;
  for (ProcessId p = 0; p < spec.n; ++p) any_local |= spec.is_local(p);
  OMEGA_CHECK(any_local, "group " << id << ": no replica is hosted here");
  const MemoryFactory factory =
      spec.memory_factory
          ? spec.memory_factory
          : [](Layout layout, std::uint32_t n) {
              return std::unique_ptr<MemoryBackend>(
                  std::make_unique<AtomicMemory>(std::move(layout), n));
            };
  inst = make_omega(spec.algo, spec.n, factory, spec.extra_registers);
  if (clock) inst.memory->set_clock(clock);
  // Only locally-hosted replicas execute here; remote replicas keep a
  // nullptr slot so pid indexing stays uniform across deployments. Their
  // registers are refreshed by the mirror transport instead of by steps.
  execs.reserve(spec.n);
  for (std::uint32_t i = 0; i < spec.n; ++i) {
    execs.push_back(spec.is_local(i)
                        ? std::make_unique<ProcExecutor>(*inst.processes[i],
                                                         *inst.memory, tick_us)
                        : nullptr);
  }
  // The pump binds its registers before the group becomes visible to any
  // worker (registration happens after construction, under the shard lock).
  if (spec.pump) spec.pump->attach(*this);
}

ProcessId Group::agreed() const {
  // Agreement is judged over the replicas hosted HERE: in a multi-node
  // deployment each node publishes the view its own Ω replicas hold (the
  // oracle's per-process output), and cross-node consistency follows from
  // Ω's eventual agreement, not from peeking at remote executors.
  ProcessId common = kNoProcess;
  for (const auto& ex : execs) {
    if (!ex || ex->crashed()) continue;
    const ProcessId view = ex->last_leader();
    if (view == kNoProcess) return kNoProcess;  // not sampled yet
    if (common == kNoProcess) {
      common = view;
    } else if (common != view) {
      return kNoProcess;  // disagreement
    }
  }
  if (common == kNoProcess || common >= spec.n) return kNoProcess;
  // A locally-hosted leader that crashed is a stale view; a remote leader
  // is taken at the local Ω's word (its crash would surface as suspicion).
  if (execs[common] && execs[common]->crashed()) return kNoProcess;
  return common;
}

GroupRegistry::GroupRegistry(std::uint32_t num_shards, std::int64_t tick_us,
                             std::function<SimTime()> clock)
    : shards_(num_shards), tick_us_(tick_us), clock_(std::move(clock)) {
  OMEGA_CHECK(num_shards >= 1, "registry needs at least one shard");
  OMEGA_CHECK(tick_us >= 1, "tick must be >= 1us");
}

std::uint32_t GroupRegistry::shard_of(GroupId gid) const noexcept {
  // Application group ids are often sequential; spread them over shards
  // with the shared splitmix64 step (common/rng.h) as a one-shot hash.
  std::uint64_t state = gid;
  return static_cast<std::uint32_t>(splitmix64(state) % shards_.size());
}

std::shared_ptr<Group> GroupRegistry::add(GroupId gid, const GroupSpec& spec) {
  auto group = std::make_shared<Group>(gid, spec, tick_us_, clock_);
  Shard& shard = shards_[shard_of(gid)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [it, inserted] = shard.groups.emplace(gid, group);
    (void)it;
    OMEGA_CHECK(inserted, "duplicate group id " << gid);
    shard.version.fetch_add(1, std::memory_order_release);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  return group;
}

bool GroupRegistry::remove(GroupId gid) {
  Shard& shard = shards_[shard_of(gid)];
  std::shared_ptr<Group> victim;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.groups.find(gid);
    if (it == shard.groups.end()) return false;
    victim = it->second;
    shard.groups.erase(it);
    shard.version.fetch_add(1, std::memory_order_release);
  }
  victim->retired.store(true, std::memory_order_release);
  total_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<Group> GroupRegistry::find(GroupId gid) const {
  const Shard& shard = shards_[shard_of(gid)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.groups.find(gid);
  return it == shard.groups.end() ? nullptr : it->second;
}

std::size_t GroupRegistry::size() const {
  return total_.load(std::memory_order_relaxed);
}

std::uint64_t GroupRegistry::shard_version(std::uint32_t shard) const {
  OMEGA_CHECK(shard < shards_.size(), "bad shard " << shard);
  return shards_[shard].version.load(std::memory_order_acquire);
}

void GroupRegistry::snapshot_shard(
    std::uint32_t shard, std::vector<std::shared_ptr<Group>>& out) const {
  OMEGA_CHECK(shard < shards_.size(), "bad shard " << shard);
  const Shard& s = shards_[shard];
  out.clear();
  std::lock_guard<std::mutex> lock(s.mu);
  out.reserve(s.groups.size());
  for (const auto& [gid, group] : s.groups) {
    (void)gid;
    out.push_back(group);
  }
}

void GroupRegistry::set_epoch_listener(EpochListener listener) {
  // Unique lock: waits for every notify holding the shared side to leave
  // its callback, making the swap a completion barrier (see header).
  std::unique_lock<std::shared_mutex> lock(listener_mu_);
  listener_ = std::move(listener);
}

void GroupRegistry::notify_epoch_change(GroupId gid,
                                        const LeaderView& view) const {
  std::shared_lock<std::shared_mutex> lock(listener_mu_);
  if (listener_) listener_(gid, view);
}

}  // namespace omega::svc
