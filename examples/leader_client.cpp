// Leader client: the network front-end (src/net) end to end.
//
//   $ ./example_leader_client
//
// A production lease manager is consumed over the network: clients ask
// "who leads group G?" over TCP, cache the answer with its epoch as a
// fencing token, and hold a WATCH open instead of polling for changes.
// This example runs the whole stack in one process — a 16-group service on
// a 2-worker pool, the epoll LeaderServer on a loopback port, and a
// blocking net::Client — then crashes a leader and shows the fail-over
// arriving as a pushed EVENT frame while the client sends nothing.
#include <iostream>

#include "common/table.h"
#include "net/client.h"
#include "net/leader_server.h"

int main() {
  using namespace omega;
  constexpr svc::GroupId kGroups = 16;

  std::cout << banner("leader queries and epoch watches over TCP",
                      {"16 groups x (n=3, fig2-write-efficient), 2 workers",
                       "epoll LeaderServer on loopback; blocking net::Client"});

  // 1. Service + server. The server binds an ephemeral loopback port at
  //    construction and starts pushing watch events once start()ed.
  svc::SvcConfig cfg;
  cfg.workers = 2;
  cfg.tick_us = 500;
  cfg.pace_us = 50;  // plays nice on small machines
  svc::MultiGroupLeaderService service(cfg);
  for (svc::GroupId gid = 0; gid < kGroups; ++gid) service.add_group(gid);
  net::LeaderServer server(service, net::NetConfig{});
  server.start();
  service.start();
  std::cout << "server listening on 127.0.0.1:" << server.port() << "\n\n";

  for (svc::GroupId gid = 0; gid < kGroups; ++gid) {
    if (service.await_leader(gid, 30000000) == kNoProcess) {
      std::cout << "group " << gid << " never settled (overloaded box?)\n";
      return 1;
    }
  }

  // 2. A client connects and reads the leader table over the wire. Each
  //    answer carries the fencing epoch.
  net::Client client;
  client.connect("127.0.0.1", server.port());
  AsciiTable table({"group", "leader", "epoch"});
  for (svc::GroupId gid = 0; gid < 6; ++gid) {  // first rows suffice
    const net::Client::Result r = client.leader(gid);
    if (!r.ok()) {
      std::cout << "query for group " << gid << " failed\n";
      return 1;
    }
    table.add_row({"group-" + std::to_string(gid),
                   "p" + std::to_string(r.view.leader),
                   std::to_string(r.view.epoch)});
  }
  std::cout << table.render() << "  ... (" << kGroups << " total)\n\n";

  // 3. Watch instead of polling: subscribe, then induce a fail-over. The
  //    client's only activity from here is blocking on its socket.
  const svc::GroupId watched = 4;
  const net::Client::Result snap = client.watch(watched);
  std::cout << "watching group-" << watched << ": leader p"
            << snap.view.leader << " at epoch " << snap.view.epoch << '\n';
  std::cout << "crashing p" << snap.view.leader << "...\n";
  service.crash(watched, snap.view.leader);

  for (;;) {
    const auto ev = client.next_event(/*timeout_ms=*/30000);
    if (!ev.has_value()) {
      std::cout << "no pushed event within 30s\n";
      return 1;
    }
    std::cout << "  pushed: group-" << ev->gid << " epoch " << ev->view.epoch
              << " leader "
              << (ev->view.leader == kNoProcess
                      ? std::string("(none)")
                      : "p" + std::to_string(ev->view.leader))
              << '\n';
    if (ev->view.leader != kNoProcess &&
        ev->view.leader != snap.view.leader) {
      std::cout << "fail-over observed purely via push: p" << snap.view.leader
                << " -> p" << ev->view.leader << "; any token from epoch "
                << snap.view.epoch << " is now stale\n\n";
      break;
    }
  }

  // 4. Server-side counters, over the wire as well.
  const net::StatsBody stats = client.stats();
  std::cout << "server: " << stats.connections << " connection(s), "
            << stats.queries << " queries, " << stats.watches
            << " active watch(es), " << stats.events << " event(s) pushed, "
            << stats.groups << " groups on " << stats.io_threads
            << " io thread(s)\n";

  client.close();
  server.stop();
  service.stop();
  if (service.failed()) {
    std::cout << "model violation: " << service.failure_message() << '\n';
    return 1;
  }
  return 0;
}
