// SAN fail-over: the deployment story from the paper's introduction —
// computers coordinating through a storage-area network of commodity disks.
// Ω runs over the disk-array register backend; the elected coordinator
// crashes; the survivors converge on a new one. Prints the fail-over
// timeline and per-disk service statistics.
//
//   $ ./examples/san_failover
#include <iostream>

#include "common/table.h"
#include "san/san_memory.h"
#include "sim/scenario.h"

int main() {
  using namespace omega;

  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 6;
  cfg.world = World::kAwb;
  cfg.timely = 1;
  cfg.seed = 7;

  SanConfig san;
  san.num_disks = 4;
  san.network_latency = 2;
  san.service_time = 3;
  san.jitter_max = 2;

  std::cout << banner("SAN fail-over",
                      {"6 hosts, 4 network-attached disks",
                       "registers striped across the disk array"});

  auto driver = make_scenario(cfg, san_memory_factory(san));

  // Phase 1: elect the initial coordinator.
  driver->run_until(250000);
  const auto rep1 = driver->metrics().convergence(driver->plan());
  if (!rep1.converged) {
    std::cout << "initial election did not settle\n";
    return 1;
  }
  std::cout << "\n[t=" << rep1.time << "] coordinator elected: p"
            << rep1.leader << '\n';

  // Phase 2: the coordinator's host dies.
  const ProcessId victim = rep1.leader;
  const SimTime crash_at = driver->now() + 1000;
  driver->plan().pause_forever(victim, crash_at);  // host stops cold
  std::cout << "[t=" << crash_at << "] coordinator p" << victim
            << " fails (host stops accessing the array)\n";

  // Phase 3: survivors re-elect.
  driver->run_until(driver->now() + 600000);
  const auto rep2 = driver->metrics().convergence(driver->plan());
  if (!rep2.converged || rep2.leader == victim) {
    std::cout << "fail-over did not complete\n";
    return 1;
  }
  std::cout << "[t=" << rep2.time << "] fail-over complete: new coordinator p"
            << rep2.leader << "\n  detection+re-election took "
            << (rep2.time - crash_at) << " ticks\n\n";

  // Disk array report.
  auto& mem = dynamic_cast<SanMemory&>(driver->memory());
  AsciiTable disks({"disk", "reads", "writes", "total queue wait (ticks)"});
  for (std::uint32_t d = 0; d < mem.num_disks(); ++d) {
    const auto& st = mem.disk_stats(d);
    disks.add_row({"disk" + std::to_string(d), fmt_count(st.reads),
                   fmt_count(st.writes), fmt_count(st.total_queue_wait)});
  }
  std::cout << disks.render();
  return 0;
}
