// Replicated-log quickstart: stand up a 3-replica log group served over
// TCP, append a handful of commands with dedup keys, survive a leader
// crash mid-stream, and read the log back.
//
//   $ ./example_smr_append
//
// This is the paper's headline application (leader-based state-machine
// replication on Ω) running live: the same consensus proposers that run
// under the simulator drive real std::atomic registers on the svc worker
// pool, and clients reach them through the epoll front-end.
#include <iostream>

#include "net/client.h"
#include "net/leader_server.h"
#include "smr/smr_service.h"

int main() {
  using namespace omega;

  svc::SvcConfig cfg;
  cfg.workers = 2;
  cfg.tick_us = 20000;
  cfg.ops_per_sweep = 32;
  cfg.pace_us = 100;
  svc::MultiGroupLeaderService service(cfg);

  smr::SmrService smr(service);
  constexpr svc::GroupId kLog = 1;
  smr::SmrSpec spec;
  spec.n = 3;
  spec.capacity = 256;
  spec.window = 4;
  spec.max_batch = 16;  // group commit: up to 16 commands per slot
  smr.add_log(kLog, spec);

  net::LeaderServer server(service, net::NetConfig{});
  server.serve_log(smr);
  server.start();
  service.start();

  const ProcessId leader = service.await_leader(kLog, 30000000);
  std::cout << "log group " << kLog << " elected p" << leader << "\n";

  net::Client client;
  client.connect("127.0.0.1", server.port());
  client.enable_auto_reconnect();  // appends survive server hiccups

  // Appends are idempotent by (client, seq): a retry after a lost ack
  // returns the original commit index instead of appending twice.
  constexpr std::uint64_t kMe = 42;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    const auto r = client.append_retry(kLog, kMe, seq, 1000 + seq);
    std::cout << "append seq " << seq << " -> index " << r.index << "\n";
  }

  // Pipelined appends share consensus slots (group commit): submit a
  // burst without waiting, then harvest acknowledgements by req_id.
  for (std::uint64_t seq = 5; seq < 13; ++seq) {
    client.append_async(kLog, kMe, seq, 1000 + seq);
  }
  while (client.outstanding_appends() > 0) {
    const auto ack = client.next_append_result(/*timeout_ms=*/10000);
    if (!ack.has_value()) break;
    std::cout << "pipelined ack -> index " << ack->result.index << "\n";
  }

  // Kill the leader; the next append rides the kNotLeader retry loop
  // until Ω elects a successor that drives the slot to decision.
  std::cout << "crashing leader p" << leader << "...\n";
  service.crash(kLog, leader);
  const auto r = client.append_retry(kLog, kMe, 13, 1013);
  // The commit proves a new leader took over; the cached *agreed* view
  // may republish a moment later, so await it for the printout.
  std::cout << "append seq 13 -> index " << r.index << " under new leader p"
            << service.await_leader(kLog, 30000000) << "\n";

  const auto page = client.read_log(kLog, 0, 16);
  std::cout << "log (commit index " << page.commit_index << "):";
  for (const auto v : page.entries) std::cout << ' ' << v;
  std::cout << "\n";

  client.close();
  server.stop();
  service.stop();
  return 0;
}
