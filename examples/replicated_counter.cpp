// Replicated counter: state-machine replication on top of Ω — the very use
// the paper cites as Ω's purpose (Paxos-style leader-based consensus). Four
// replicas submit increment commands; a replicated log (one consensus slot
// per entry, Ω for liveness) totally orders them; every replica applies the
// same sequence and ends with the same counter value — even though one
// replica crashes in the middle.
//
//   $ ./examples/replicated_counter
#include <iostream>

#include "common/table.h"
#include "consensus/replicated_log.h"
#include "sim/scenario.h"

int main() {
  using namespace omega;

  constexpr std::uint32_t kReplicas = 4;
  constexpr std::uint32_t kCommandsEach = 3;

  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;  // the bounded-memory Ω works just as well
  cfg.n = kReplicas;
  cfg.world = World::kAwb;
  cfg.timely = 0;
  cfg.seed = 99;

  ReplicatedLog log(kReplicas, /*capacity=*/24);
  cfg.extra_registers = [&log](LayoutBuilder& b) { log.declare(b); };
  auto driver = make_scenario(cfg);
  log.bind(driver->memory().layout());

  std::cout << banner("replicated counter",
                      {"4 replicas, commands = counter increments",
                       "log slot = one consensus instance over Omega"});

  // Each command is "increment by amount"; encode (replica+1)*100 + amount
  // so entries are unique and attributable.
  std::vector<std::vector<std::uint64_t>> commands(kReplicas);
  for (std::uint32_t r = 0; r < kReplicas; ++r) {
    for (std::uint32_t c = 0; c < kCommandsEach; ++c) {
      commands[r].push_back((r + 1) * 100 + (c + 1));
    }
  }

  // Replica 3 will crash while the log is being pumped.
  driver->plan() = CrashPlan::at(kReplicas, {{3, 60000}});
  std::cout << "\nreplica p3 is scheduled to crash at t=60000\n\n";

  const auto decided = log.pump(*driver, commands, 5000000);

  AsciiTable t({"slot", "command", "submitted by", "increment"});
  std::uint64_t counter = 0;
  for (std::size_t s = 0; s < decided.size(); ++s) {
    const auto cmd = decided[s];
    const auto replica = cmd / 100 - 1;
    const auto amount = cmd % 100;
    counter += amount;
    t.add_row({std::to_string(s), std::to_string(cmd),
               "p" + std::to_string(replica), "+" + std::to_string(amount)});
  }
  std::cout << t.render() << "\nfinal counter value at every live replica: "
            << counter << "\nlog entries: " << decided.size() << " (crashed "
            << "replica's unsubmitted commands are dropped)\n";

  // Sanity: every live replica reconstructs the identical log from the
  // shared decision boards.
  for (std::uint32_t s = 0; s < log.capacity(); ++s) {
    const auto d = log.decided(driver->memory(), s);
    if (s < decided.size()) {
      if (!d.has_value() || *d != decided[s]) {
        std::cout << "log mismatch at slot " << s << "!\n";
        return 1;
      }
    }
  }
  std::cout << "all replicas agree on the log prefix ✓\n";
  return 0;
}
