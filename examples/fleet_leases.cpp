// Fleet leases: a miniature lease manager on the multi-group leader
// service (src/svc).
//
//   $ ./example_fleet_leases
//
// A production lock/lease service keeps one leader election per lease — one
// per database shard, per job queue, per lock namespace — and clients only
// ever ask "who holds lease L right now?". This example runs a fleet of 48
// leases (each a 3-process Ω group, paper Figure 2) on a 2-worker pool,
// prints the lease table served from the epoch-validated cache, then
// crashes one holder and shows the fail-over: a new holder, a bumped epoch
// (the fencing token), and untouched neighbours.
#include <iostream>

#include "common/table.h"
#include "rt/leader_service.h"
#include "svc/multigroup_service.h"

int main() {
  using namespace omega;
  constexpr svc::GroupId kLeases = 48;

  std::cout << banner("fleet leases on the multi-group leader service",
                      {"48 leases x (n=3, fig2-write-efficient), 2 workers",
                       "reads served from the epoch-validated leader cache"});

  // 1. One election group per lease, multiplexed on a 2-worker pool. The
  //    single-group facade (LeaderService) hands fleets to src/svc.
  svc::SvcConfig cfg;
  cfg.workers = 2;
  cfg.tick_us = 500;
  cfg.pace_us = 50;  // plays nice on small machines
  auto fleet = LeaderService::make_fleet(cfg);
  for (svc::GroupId lease = 0; lease < kLeases; ++lease) {
    fleet->add_group(lease);
  }
  fleet->start();

  // 2. Wait until every lease has an agreed holder.
  for (svc::GroupId lease = 0; lease < kLeases; ++lease) {
    if (fleet->await_leader(lease, 30000000) == kNoProcess) {
      std::cout << "lease " << lease << " never settled (overloaded box?)\n";
      return 1;
    }
  }

  // 3. The lease table, straight from the cache (one atomic load each).
  AsciiTable table({"lease", "holder", "epoch", "shard/worker"});
  for (svc::GroupId lease = 0; lease < 8; ++lease) {  // first rows suffice
    const svc::LeaderView v = fleet->leader(lease);
    table.add_row({"lease-" + std::to_string(lease),
                   "p" + std::to_string(v.leader), std::to_string(v.epoch),
                   std::to_string(fleet->shard_of(lease))});
  }
  std::cout << table.render() << "  ... (" << kLeases << " total)\n\n";

  // 4. Fail-over: crash the holder of lease-5. Ω re-elects inside that
  //    group only; the epoch bump invalidates any fencing token issued
  //    under the old holder.
  const svc::GroupId victim = 5;
  // Re-read until agreed: the cache can transiently lose agreement right
  // after the await during early convergence.
  svc::LeaderView before = fleet->leader(victim);
  while (before.leader == kNoProcess) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    before = fleet->leader(victim);
  }
  std::cout << "crashing lease-" << victim << "'s holder p" << before.leader
            << " (epoch " << before.epoch << ")...\n";
  fleet->crash(victim, before.leader);

  const std::int64_t deadline = fleet->now_us() + 30000000;
  svc::LeaderView after = fleet->leader(victim);
  while ((after.leader == before.leader || after.leader == kNoProcess) &&
         fleet->now_us() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    after = fleet->leader(victim);
  }
  if (after.leader == kNoProcess || after.leader == before.leader) {
    std::cout << "no fail-over within 30s\n";
    return 1;
  }
  std::cout << "lease-" << victim << " failed over: p" << before.leader
            << " -> p" << after.leader << ", epoch " << before.epoch << " -> "
            << after.epoch << " (stale fencing tokens now refuse)\n";

  const svc::LeaderView neighbour = fleet->leader(victim + 1);
  std::cout << "lease-" << victim + 1 << " untouched: still p"
            << neighbour.leader << " at epoch " << neighbour.epoch << "\n\n";

  const svc::SvcStats stats = fleet->stats();
  std::cout << "pool: " << stats.groups << " groups, " << stats.steps
            << " ops, " << stats.timer_fires << " monitor wakeups, "
            << stats.sweeps << " sweeps\n";
  fleet->stop();
  if (fleet->failed()) {
    std::cout << "model violation: " << fleet->failure_message() << '\n';
    return 1;
  }
  return 0;
}
