// Three OS processes, one replicated log — the paper's shared-memory
// model deployed as a distributed system.
//
//   $ ./example_multi_node_smr
//
// The parent forks three node processes (smr::SmrNode: one replica each,
// register state mirrored over v1.2 REG_PUSH streams, v1 client protocol
// on top) and then acts as an ordinary client: it appends a handful of
// commands at the elected leader, reads the log back from EVERY node to
// show followers converge through their mirrors, SIGKILLs the leader's
// process, and keeps appending against the survivor that takes over.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "net/client.h"
#include "smr/node.h"

using namespace omega;

namespace {

constexpr svc::GroupId kGid = 1;

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

[[noreturn]] void run_node(const smr::NodeTopology& base,
                           std::uint32_t self) {
  try {
    smr::NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 20000;    // 20ms failure-detection ticks
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000; // idle nodes back off the shared core
    scfg.worker_nice = 5;
    smr::SmrNode node(topo, scfg);
    smr::SmrSpec spec;
    spec.n = 3;
    spec.capacity = 1024;
    spec.window = 4;
    spec.max_batch = 8;
    node.add_log(kGid, spec);
    node.start();
    for (;;) ::pause();
  } catch (const std::exception& e) {
    std::cerr << "node " << self << " died: " << e.what() << '\n';
    _exit(1);
  }
}

void connect_node(net::Client& c, const smr::NodeTopology& topo,
                  std::uint32_t node) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    try {
      c.connect("127.0.0.1", topo.nodes[node].serve_port, 2000);
      return;
    } catch (const net::NetError&) {
      if (std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

ProcessId wait_leader(const smr::NodeTopology& topo,
                      const std::vector<pid_t>& pids) {
  for (int round = 0; round < 600; ++round) {
    for (std::uint32_t node = 0; node < topo.num_nodes(); ++node) {
      if (pids[node] < 0) continue;
      try {
        net::Client c;
        connect_node(c, topo, node);
        const auto r = c.leader(kGid);
        if (r.ok() && r.view.leader != kNoProcess &&
            pids[topo.node_of(r.view.leader)] > 0) {
          return r.view.leader;
        }
      } catch (const net::NetError&) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return kNoProcess;
}

}  // namespace

int main() {
  smr::NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(smr::NodeEndpoint{i, "127.0.0.1", pick_free_port(),
                                           pick_free_port()});
  }
  std::vector<pid_t> pids;
  for (std::uint32_t i = 0; i < 3; ++i) {
    const pid_t pid = fork();
    if (pid == 0) run_node(topo, i);
    pids.push_back(pid);
    std::cout << "spawned node " << i << " (pid " << pid << "): serve :"
              << topo.nodes[i].serve_port << ", mirror :"
              << topo.nodes[i].mirror_port << '\n';
  }

  const ProcessId leader = wait_leader(topo, pids);
  std::cout << "\nelected: replica " << leader << " on node "
            << topo.node_of(leader) << '\n';

  // Append at the leader node; the dedup key (client, seq) makes retries
  // across failover idempotent.
  net::Client writer;
  connect_node(writer, topo, topo.node_of(leader));
  writer.enable_auto_reconnect();
  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    const auto r = writer.append_retry(kGid, /*client=*/7, seq, 100 + seq);
    std::cout << "append " << (100 + seq) << " -> index " << r.index << '\n';
  }

  // Every node serves the same log — followers converged via the mirror.
  for (std::uint32_t node = 0; node < 3; ++node) {
    net::Client c;
    connect_node(c, topo, node);
    for (int spin = 0; spin < 100; ++spin) {
      if (c.read_log(kGid, 0, 16).commit_index >= 5) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const auto page = c.read_log(kGid, 0, 16);
    std::cout << "node " << node << " log:";
    for (const auto v : page.entries) std::cout << ' ' << v;
    std::cout << '\n';
  }

  std::cout << "\nSIGKILL node " << topo.node_of(leader) << " ...\n";
  ::kill(pids[topo.node_of(leader)], SIGKILL);
  ::waitpid(pids[topo.node_of(leader)], nullptr, 0);
  pids[topo.node_of(leader)] = -1;

  const ProcessId next = wait_leader(topo, pids);
  std::cout << "new leader: replica " << next << " on node "
            << topo.node_of(next) << '\n';
  net::Client writer2;
  connect_node(writer2, topo, topo.node_of(next));
  writer2.enable_auto_reconnect();
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const auto r = writer2.append_retry(kGid, /*client=*/8, seq, 200 + seq);
    std::cout << "append " << (200 + seq) << " -> index " << r.index << '\n';
  }
  const auto page = writer2.read_log(kGid, 0, 16);
  std::cout << "survivor log:";
  for (const auto v : page.entries) std::cout << ' ' << v;
  std::cout << "\n\nthe log outlived its leader's process.\n";

  for (const pid_t pid : pids) {
    if (pid > 0) ::kill(pid, SIGKILL);
  }
  for (const pid_t pid : pids) {
    if (pid > 0) ::waitpid(pid, nullptr, 0);
  }
  return 0;
}
