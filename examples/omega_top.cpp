// omega_top — a live metrics dashboard over the v1.3 METRICS frame.
//
//   $ ./example_omega_top                       # self-hosted 3-node demo
//   $ ./example_omega_top HOST:PORT [...]       # watch a running cluster
//   $ ./example_omega_top --once HOST:PORT      # one snapshot, no refresh
//   $ ./example_omega_top trace HOST:PORT [...] # stitch causal traces
//   $ ./example_omega_top live HOST:PORT [...]  # v1.5 streamed dashboard
//   $ ./example_omega_top health HOST:PORT [..] # health verdicts, exit code
//
// Each refresh scrapes every endpoint's metric registry (paged METRICS
// requests, merged by net::Client::metrics()) and renders one row per
// node: append/query traffic, consensus queue depth, and the p50/p99 of
// the pipeline's stage histograms (seal->decide, decide->apply,
// ack-flush, mirror push lag) — the same numbers bench_e15/e16 report,
// read live off a serving cluster.
//
// The `trace` mode scrapes every endpoint's flight-recorder rings over
// the v1.4 TRACE_DUMP frame instead, joins the records by trace id
// (obs::stitch), and prints each append's cross-process causal chain —
// enqueue on the leader, seal/decide/apply, mirror push, follower apply,
// commit fan-out — on one wall-clock timeline, with a per-hop latency
// summary at the end.
//
// The `live` mode subscribes to each endpoint's sampler stream (v1.5
// METRICS_WATCH): the server pushes every ~250ms tick as METRICS_EVENT
// pages, so the dashboard refreshes without polling, carries the node's
// health verdict as a banner, and draws sparklines from the streamed
// history. The `health` mode does one HEALTH round-trip per endpoint and
// exits with the worst verdict (0 ok, 1 degraded, 2 critical/unreachable)
// — cron/CI can gate on it.
//
// With no endpoints, the example forks the three-process SmrNode cluster
// of example_multi_node_smr, drives a background append load at the
// elected leader, and watches itself for a few refreshes.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <deque>
#include <memory>

#include "common/table.h"
#include "net/client.h"
#include "obs/health.h"
#include "obs/trace_stitch.h"
#include "smr/node.h"

using namespace omega;

namespace {

constexpr svc::GroupId kGid = 9;

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

std::string fmt_us(double ns) {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << ns / 1000.0;
  return os.str();
}

std::int64_t sample_value(const net::Client::MetricsResult& m,
                          const std::string& name) {
  const obs::MetricSample* s = m.find(name);
  return s != nullptr ? s->value : 0;
}

std::string quantiles(const net::Client::MetricsResult& m,
                      const std::string& name) {
  const obs::MetricSample* s = m.find(name);
  if (s == nullptr || s->value == 0) return "-";
  return fmt_us(static_cast<double>(s->quantile(0.5))) + "/" +
         fmt_us(static_cast<double>(s->quantile(0.99)));
}

/// One dashboard frame over every endpoint. `prev_appends` carries the
/// last refresh's APPEND counters for the derived rate column.
void render(const std::vector<Endpoint>& eps,
            std::vector<std::int64_t>& prev_appends, double interval_s,
            bool clear) {
  if (clear) std::cout << "\x1b[2J\x1b[H";
  AsciiTable table({"node", "appends", "app/s", "queries", "queue",
                    "sessions", "seal->dec p50/p99 us", "dec->apply us",
                    "ack-flush us", "push-lag us"});
  prev_appends.resize(eps.size(), 0);
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const std::string label =
        eps[i].host + ":" + std::to_string(eps[i].port);
    net::Client c;
    net::Client::MetricsResult m;
    try {
      c.connect(eps[i].host, eps[i].port, 2000);
      m = c.metrics();
    } catch (const net::NetError& e) {
      table.add_row({label, "(down)", "-", "-", "-", "-", "-", "-", "-",
                     "-"});
      continue;
    }
    const std::int64_t appends = sample_value(m, "net.frames.append");
    const std::int64_t rate =
        interval_s > 0 && prev_appends[i] > 0
            ? static_cast<std::int64_t>(
                  static_cast<double>(appends - prev_appends[i]) /
                  interval_s)
            : 0;
    prev_appends[i] = appends;
    table.add_row(
        {label, std::to_string(appends), std::to_string(rate),
         std::to_string(sample_value(m, "net.frames.leader")),
         std::to_string(sample_value(m, "smr.queue_pending")) + "+" +
             std::to_string(sample_value(m, "smr.queue_in_flight")),
         std::to_string(sample_value(m, "smr.sessions")),
         quantiles(m, "smr.seal_to_decide_ns"),
         quantiles(m, "smr.decide_to_apply_ns"),
         quantiles(m, "net.ack_flush_ns"),
         quantiles(m, "mirror.push_lag_ns")});
  }
  std::cout << table.render() << std::flush;
}

// --- trace stitch mode -----------------------------------------------------

/// Scrapes every endpoint's flight recorder (v1.4 TRACE_DUMP), stitches
/// the records into per-append causal chains, prints the timelines and a
/// per-hop latency summary. Endpoint index doubles as the node label.
int run_trace_stitch(const std::vector<Endpoint>& eps) {
  std::vector<obs::NodeTrace> nodes;
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const std::string label =
        eps[i].host + ":" + std::to_string(eps[i].port);
    net::Client c;
    try {
      c.connect(eps[i].host, eps[i].port, 2000);
      net::Client::TraceDumpResult d = c.trace_dump();
      if (d.status != net::Status::kOk) {
        std::cerr << "n" << i << " " << label
                  << ": TRACE_DUMP refused\n";
        continue;
      }
      std::cout << "n" << i << " " << label << ": " << d.records.size()
                << " records, realtime offset "
                << d.realtime_offset_ns / 1000000 << "ms\n";
      nodes.push_back(obs::NodeTrace{static_cast<std::uint32_t>(i),
                                     d.realtime_offset_ns,
                                     std::move(d.records)});
    } catch (const net::NetError& e) {
      std::cerr << "n" << i << " " << label << ": down (" << e.what()
                << ")\n";
    }
  }
  const std::vector<obs::StitchedTrace> traces = obs::stitch(nodes);
  if (traces.empty()) {
    std::cout << "no traced appends recorded\n";
    return nodes.empty() ? 1 : 0;
  }
  std::cout << '\n' << obs::render_stitched(traces);

  // Per-hop latency summary across every stitched append.
  using obs::TraceEvent;
  struct HopStat {
    const char* label;
    TraceEvent from;
    TraceEvent to;
    std::vector<std::int64_t> ns;
  };
  std::vector<HopStat> stats = {
      {"enqueue->seal", TraceEvent::kAppendEnqueue, TraceEvent::kBatchSeal,
       {}},
      {"seal->decide", TraceEvent::kBatchSeal, TraceEvent::kSlotDecide, {}},
      {"decide->apply", TraceEvent::kSlotDecide, TraceEvent::kBatchApply,
       {}},
      {"apply->fanout", TraceEvent::kBatchApply, TraceEvent::kCommitFanout,
       {}},
      {"seal->mirror-push", TraceEvent::kBatchSeal, TraceEvent::kBatchPush,
       {}},
  };
  std::vector<std::int64_t> follower_apply;  // enqueue -> remote apply
  for (const auto& t : traces) {
    for (auto& s : stats) {
      const std::int64_t d = obs::hop_ns(t, s.from, s.to);
      if (d >= 0) s.ns.push_back(d);
    }
    const obs::TraceHop* enq =
        obs::find_hop(t, TraceEvent::kAppendEnqueue);
    if (enq != nullptr) {
      std::int64_t worst = -1;
      for (const auto& h : t.hops) {
        if (h.ev == TraceEvent::kBatchApply && h.node != enq->node) {
          worst = std::max(worst, h.wall_ns - enq->wall_ns);
        }
      }
      if (worst >= 0) follower_apply.push_back(worst);
    }
  }
  const auto pct = [](std::vector<std::int64_t>& v,
                      double q) -> std::int64_t {
    if (v.empty()) return 0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
  };
  AsciiTable table({"hop", "count", "p50 us", "p99 us"});
  const auto add_stat = [&](const char* label,
                            std::vector<std::int64_t>& ns) {
    if (ns.empty()) {
      table.add_row({label, "0", "-", "-"});
      return;
    }
    const std::int64_t p50 = pct(ns, 0.5);
    const std::int64_t p99 = pct(ns, 0.99);
    table.add_row({label, std::to_string(ns.size()),
                   fmt_us(static_cast<double>(p50)),
                   fmt_us(static_cast<double>(p99))});
  };
  for (auto& s : stats) add_stat(s.label, s.ns);
  add_stat("enqueue->follower-apply", follower_apply);
  std::cout << '\n'
            << traces.size() << " stitched trace(s)\n"
            << table.render() << std::flush;
  return 0;
}

// --- health mode (v1.5 HEALTH) ---------------------------------------------

/// One HEALTH round-trip per endpoint; the exit code is the worst verdict
/// seen (unreachable/refused counts as critical) so cron jobs and CI
/// smoke steps can gate on `omega_top health ...` directly.
int run_health(const std::vector<Endpoint>& eps) {
  int worst = 0;
  AsciiTable table({"node", "health", "ticks", "rules", "firing"});
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const std::string label =
        eps[i].host + ":" + std::to_string(eps[i].port);
    net::Client c;
    try {
      c.connect(eps[i].host, eps[i].port, 2000);
      const net::Client::HealthResult h = c.health();
      if (!h.ok()) {
        table.add_row({label, "(no sampler)", "-", "-", "-"});
        worst = std::max(worst, 2);
        continue;
      }
      const auto overall = static_cast<obs::Health>(h.overall);
      std::string firing = "-";
      if (!h.firing.empty()) {
        firing.clear();
        for (const net::HealthRuleWire& r : h.firing) {
          if (!firing.empty()) firing += "; ";
          firing += r.name + ": " + r.reason;
        }
      }
      table.add_row({label, obs::health_name(overall),
                     std::to_string(h.ticks),
                     std::to_string(h.firing.size()) + "/" +
                         std::to_string(h.rules_total),
                     firing});
      worst = std::max(worst, std::min<int>(h.overall, 2));
    } catch (const net::NetError& e) {
      table.add_row({label, "(down)", "-", "-", e.what()});
      worst = std::max(worst, 2);
    }
  }
  std::cout << table.render() << std::flush;
  return worst;
}

// --- live mode (v1.5 METRICS_WATCH stream) ---------------------------------

/// Client-side state for one streamed endpoint: the subscription plus
/// enough history for the derived-rate column and the sparklines.
struct LiveFeed {
  Endpoint ep;
  std::unique_ptr<net::Client> client;
  bool up = false;
  std::uint32_t period_ms = 250;
  std::uint64_t tick = 0;
  std::uint8_t health = 0;
  std::vector<obs::MetricSample> samples;
  std::uint64_t last_tick = 0;
  std::int64_t last_appends = -1;
  std::int64_t last_reads = -1;
  std::deque<double> rate_hist;
  std::deque<double> read_hist;
  std::deque<double> queue_hist;
};

constexpr std::size_t kSparkWidth = 24;

std::int64_t feed_value(const LiveFeed& f, const std::string& name) {
  for (const obs::MetricSample& m : f.samples) {
    if (m.name == name) return m.value;
  }
  return 0;
}

/// Renders `v` as a unicode sparkline scaled to its own min..max window.
std::string sparkline(const std::deque<double>& v) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (v.empty()) return "-";
  double lo = v.front(), hi = v.front();
  for (const double x : v) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  std::string out;
  for (const double x : v) {
    const std::size_t idx =
        hi > lo ? static_cast<std::size_t>((x - lo) / (hi - lo) * 7.0 + 0.5)
                : 0;
    out += kBars[std::min<std::size_t>(idx, 7)];
  }
  return out;
}

void push_hist(std::deque<double>& h, double v) {
  h.push_back(v);
  while (h.size() > kSparkWidth) h.pop_front();
}

/// Sum of the answered-read counters — the lease fast path, follower
/// read-index, and the committed-read fallback all count as served reads.
std::int64_t feed_reads(const LiveFeed& f) {
  return feed_value(f, "smr.reads.lease") + feed_value(f, "smr.reads.index") +
         feed_value(f, "smr.reads.fallback");
}

/// The node's lease posture, from the registered gauges: "held" while a
/// valid leader lease backs memory-speed reads, "wait" when the node
/// expects a lease but it has lapsed (reads fall back or defer), "-" on
/// followers and when leases are off.
std::string feed_lease(const LiveFeed& f) {
  if (feed_value(f, "smr.lease_expected") == 0) return "-";
  return feed_value(f, "smr.lease_valid") != 0 ? "held" : "wait";
}

/// Applies one complete sampler tick to the feed's derived history.
void apply_tick(LiveFeed& f, const net::Client::Event& e) {
  f.samples = e.samples;
  f.health = e.health;
  const std::int64_t appends = feed_value(f, "net.frames.append");
  const std::int64_t reads = feed_reads(f);
  if (f.last_appends >= 0 && e.tick > f.last_tick && f.period_ms > 0) {
    const double secs = static_cast<double>(e.tick - f.last_tick) *
                        static_cast<double>(f.period_ms) / 1000.0;
    push_hist(f.rate_hist,
              static_cast<double>(appends - f.last_appends) / secs);
    push_hist(f.read_hist,
              static_cast<double>(reads - f.last_reads) / secs);
  }
  f.last_appends = appends;
  f.last_reads = reads;
  f.last_tick = e.tick;
  f.tick = e.tick;
  push_hist(f.queue_hist,
            static_cast<double>(feed_value(f, "smr.queue_pending")));
}

/// Streams every endpoint's sampler ticks and redraws after each sweep.
/// No polling: the data arrives as METRICS_EVENT pushes at the server's
/// own sample cadence.
int run_live(const std::vector<Endpoint>& eps, int rounds) {
  std::vector<LiveFeed> feeds;
  for (const Endpoint& ep : eps) {
    feeds.emplace_back();
    feeds.back().ep = ep;
  }
  for (int round = 0; rounds == 0 || round < rounds; ++round) {
    for (LiveFeed& f : feeds) {
      if (!f.up) {
        try {
          f.client = std::make_unique<net::Client>();
          f.client->connect(f.ep.host, f.ep.port, 1000);
          const auto w = f.client->metrics_watch();
          if (!w.ok()) continue;  // pre-v1.5 server or sampler off
          f.period_ms = w.period_ms;
          f.up = true;
          f.last_appends = -1;
        } catch (const net::NetError&) {
          continue;
        }
      }
      try {
        // Wait for one fresh tick, then drain whatever else queued so a
        // slow terminal never falls behind the stream.
        bool got = false;
        while (auto e = f.client->next_event(got ? 0 : 600)) {
          if (e->kind == net::Client::Event::Kind::kMetricsTick) {
            apply_tick(f, *e);
            got = true;
          }
        }
      } catch (const net::NetError&) {
        f.up = false;
      }
    }
    // Overall banner: the worst streamed verdict this sweep.
    int worst = -1;
    for (const LiveFeed& f : feeds) {
      worst = std::max(worst, f.up ? static_cast<int>(f.health) : 2);
    }
    std::cout << "\x1b[2J\x1b[H";
    std::cout << "health: "
              << (worst < 0 ? "(no feed)"
                            : obs::health_name(static_cast<obs::Health>(
                                  std::min(worst, 2))))
              << "   (streamed, period " << feeds[0].period_ms << "ms)\n";
    AsciiTable table({"node", "health", "tick", "app/s", "rate",
                      "read/s", "lease", "queue", "depth", "push-lag us"});
    for (LiveFeed& f : feeds) {
      const std::string label =
          f.ep.host + ":" + std::to_string(f.ep.port);
      if (!f.up) {
        table.add_row(
            {label, "(down)", "-", "-", "-", "-", "-", "-", "-", "-"});
        continue;
      }
      const double rate = f.rate_hist.empty() ? 0.0 : f.rate_hist.back();
      const double reads = f.read_hist.empty() ? 0.0 : f.read_hist.back();
      std::string lag = "-";
      for (const obs::MetricSample& m : f.samples) {
        if (m.name == "mirror.push_lag_ns" && m.value > 0) {
          lag = fmt_us(static_cast<double>(m.quantile(0.99)));
        }
      }
      table.add_row(
          {label,
           obs::health_name(static_cast<obs::Health>(f.health)),
           std::to_string(f.tick),
           std::to_string(static_cast<std::int64_t>(rate)),
           sparkline(f.rate_hist),
           std::to_string(static_cast<std::int64_t>(reads)),
           feed_lease(f),
           std::to_string(feed_value(f, "smr.queue_pending")),
           sparkline(f.queue_hist), lag});
    }
    std::cout << table.render() << std::flush;
  }
  return 0;
}

// --- self-hosted demo cluster (no endpoints given) -------------------------

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  socklen_t len = sizeof addr;
  getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

[[noreturn]] void run_node(const smr::NodeTopology& base,
                           std::uint32_t self) {
  try {
    smr::NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 20000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    scfg.worker_nice = 5;
    smr::SmrNode node(topo, scfg);
    smr::SmrSpec spec;
    spec.n = 3;
    spec.capacity = 8192;
    spec.window = 4;
    spec.max_batch = 8;
    // Leases on, so the live dashboard's read/s + lease columns have
    // something to show against the demo cluster.
    spec.lease_ttl_us = 400000;
    spec.lease_skew_us = 20000;
    node.add_log(kGid, spec);
    node.start();
    for (;;) ::pause();
  } catch (const std::exception& e) {
    std::cerr << "node " << self << " died: " << e.what() << '\n';
    _exit(1);
  }
}

void append_load(const smr::NodeTopology& topo, std::atomic<bool>& stop) {
  net::Client c;
  c.enable_auto_reconnect();
  // The freshly-forked nodes need a moment to bind: retry, don't die.
  for (;;) {
    if (stop.load(std::memory_order_acquire)) return;
    try {
      c.connect("127.0.0.1", topo.nodes[0].serve_port, 2000);
      break;
    } catch (const net::NetError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }
  std::uint64_t seq = 0;
  std::uint32_t at = 0;
  while (!stop.load(std::memory_order_acquire)) {
    try {
      ++seq;
      const auto r = c.append(kGid, /*client=*/11, seq, 1 + (seq % 1000),
                              /*response_timeout_ms=*/2000);
      // Read back the value just written so the dashboard's read/s and
      // lease columns track the v1.6 point-read path too.
      if (r.ok()) c.read(kGid, 1 + (seq % 1000), /*min_index=*/0, 2000);
      if (r.status == net::Status::kNotLeader &&
          r.view.leader != kNoProcess) {
        at = topo.node_of(r.view.leader);
        c.close();
        c.connect("127.0.0.1", topo.nodes[at].serve_port, 2000);
      }
    } catch (const net::NetError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool trace_mode = false;
  bool live_mode = false;
  bool health_mode = false;
  int interval_ms = 1000;
  int rounds = 0;  // 0 = forever (demo mode overrides to a few)
  std::vector<Endpoint> eps;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "trace") {
      trace_mode = true;
    } else if (arg == "live") {
      live_mode = true;
    } else if (arg == "health") {
      health_mode = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else {
      const auto colon = arg.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "usage: " << argv[0]
                  << " [trace|live|health] [--once] [--interval MS] "
                     "[--rounds N] [HOST:PORT ...]\n";
        return 2;
      }
      eps.push_back(Endpoint{
          arg.substr(0, colon),
          static_cast<std::uint16_t>(std::atoi(arg.c_str() + colon + 1))});
    }
  }

  std::vector<pid_t> pids;
  std::atomic<bool> stop{false};
  std::thread load;
  smr::NodeTopology topo;
  const bool demo = eps.empty();
  if (demo) {
    std::cout << banner("omega_top: self-hosted 3-node demo",
                        {"forking 3 SmrNode processes + an append load",
                         "pass HOST:PORT endpoints to watch a real "
                         "cluster instead"});
    for (std::uint32_t i = 0; i < 3; ++i) {
      topo.nodes.push_back(smr::NodeEndpoint{
          i, "127.0.0.1", pick_free_port(), pick_free_port()});
    }
    for (std::uint32_t i = 0; i < 3; ++i) {
      const pid_t pid = fork();
      if (pid == 0) run_node(topo, i);
      pids.push_back(pid);
      eps.push_back(Endpoint{"127.0.0.1", topo.nodes[i].serve_port});
    }
    load = std::thread([&] { append_load(topo, stop); });
    if (rounds == 0) rounds = 8;
  }

  int rc = 0;
  if (trace_mode) {
    // Let the demo load generate some traced appends before scraping.
    if (demo) std::this_thread::sleep_for(std::chrono::seconds(3));
    rc = run_trace_stitch(eps);
  } else if (health_mode) {
    // Give the demo's samplers a couple of ticks before judging.
    if (demo) std::this_thread::sleep_for(std::chrono::seconds(2));
    rc = run_health(eps);
  } else if (live_mode) {
    rc = run_live(eps, once ? 1 : rounds);
  } else {
    std::vector<std::int64_t> prev_appends;
    const double interval_s = interval_ms / 1000.0;
    for (int round = 0;
         once ? round < 1 : (rounds == 0 || round < rounds); ++round) {
      if (round > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
      render(eps, prev_appends, round > 0 ? interval_s : 0.0,
             /*clear=*/!once && !demo);
    }
  }

  if (demo) {
    stop.store(true, std::memory_order_release);
    if (load.joinable()) load.join();
    for (const pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }
  return rc;
}
