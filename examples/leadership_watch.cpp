// Leadership watch: the application-facing API on real threads. Runs the
// bounded algorithm (paper Fig. 5) on std::atomic registers with one thread
// per process, subscribes to leadership transitions, kills the elected
// leader, and prints the fail-over as it happens — the event-driven pattern
// a lock service or primary-backup system would use.
//
//   $ ./examples/leadership_watch
#include <chrono>
#include <iostream>
#include <mutex>

#include "common/table.h"
#include "rt/leader_service.h"

int main() {
  using namespace omega;

  RtConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 4;
  cfg.tick_us = 1000;
  cfg.pace_us = 50;

  std::cout << banner("leadership watch (std::thread + std::atomic)",
                      {"4 processes, bounded algorithm (paper Fig. 5)",
                       "event-driven fail-over via LeaderService callbacks"});

  LeaderService service(cfg);
  std::mutex io;
  service.subscribe([&io](ProcessId prev, ProcessId cur, std::int64_t at_us) {
    std::lock_guard<std::mutex> lock(io);
    std::cout << "[" << at_us / 1000 << " ms] leadership: ";
    if (prev == kNoProcess) {
      std::cout << "(no agreement)";
    } else {
      std::cout << "p" << prev;
    }
    std::cout << " -> ";
    if (cur == kNoProcess) {
      std::cout << "(no agreement)\n";
    } else {
      std::cout << "p" << cur << '\n';
    }
  });

  service.start();
  const ProcessId first = [&] {
    // Wait for the first agreed leader.
    for (int i = 0; i < 20000; ++i) {
      const ProcessId a = service.current();
      if (a != kNoProcess) return a;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return kNoProcess;
  }();
  if (first == kNoProcess) {
    std::cout << "no leader emerged within 20s\n";
    return 1;
  }
  {
    std::lock_guard<std::mutex> lock(io);
    std::cout << "--- killing the leader p" << first << " ---\n";
  }
  service.driver().crash(first);

  const ProcessId second = [&] {
    for (int i = 0; i < 30000; ++i) {
      const ProcessId a = service.current();
      if (a != kNoProcess && a != first) return a;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return kNoProcess;
  }();
  service.stop();

  if (second == kNoProcess) {
    std::cout << "fail-over did not complete within 30s\n";
    return 1;
  }
  std::cout << "--- fail-over complete: p" << second << " leads; "
            << service.transitions() << " transitions observed ---\n";

  // The instrumentation works on threads too: who wrote how much?
  AsciiTable t({"process", "reads", "writes"});
  for (ProcessId i = 0; i < cfg.n; ++i) {
    t.add_row({"p" + std::to_string(i),
               fmt_count(service.driver().memory().instr().reads_by(i)),
               fmt_count(service.driver().memory().instr().writes_by(i))});
  }
  std::cout << t.render();
  return 0;
}
