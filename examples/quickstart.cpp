// Quickstart: elect an eventual leader with the paper's write-efficient
// algorithm (Figure 2) in a simulated asynchronous shared-memory system.
//
//   $ ./examples/quickstart
//
// Builds an 8-process instance, runs it through an asynchronous prefix and
// an AWB-satisfying suffix, and prints who got elected, when leadership
// stabilized, and the write census that demonstrates Theorem 3 (eventually
// only the leader writes).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "sim/scenario.h"

int main() {
  using namespace omega;

  // 1. Describe the run: the algorithm, the world (who is timely, when the
  //    chaos ends) and the timer family. Everything is seeded.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;  // paper Figure 2
  cfg.n = 8;
  cfg.world = World::kAwb;     // AWB only: one timely process, others bursty
  cfg.timer = TimerKind::kChaoticPrefix;  // timers may lie before GST
  cfg.gst = 2000;
  cfg.seed = 2024;

  std::cout << banner("omega-smr quickstart",
                      {"algorithm: " + std::string(algo_name(cfg.algo)),
                       "scenario : " + cfg.label()});

  // 2. Build and run.
  auto driver = make_scenario(cfg);
  driver->run_until(200000);

  // 3. Ask the oracle. Every process's leader() now returns the same
  //    correct identity (Ω's Eventual Leadership).
  const auto report = driver->metrics().convergence(driver->plan());
  if (!report.converged) {
    std::cout << "no convergence within the horizon (raise it?)\n";
    return 1;
  }
  std::cout << "\nelected leader   : p" << report.leader
            << "\nstabilized at    : t=" << report.time << " ticks"
            << "\nleader changes   : " << report.total_changes
            << " (all during the anarchy prefix)\n\n";

  // 4. Theorem 3, live: in a trailing window, exactly one process writes.
  const auto before = driver->memory().instr().snapshot();
  driver->run_for(50000);
  const auto after = driver->memory().instr().snapshot();
  const auto census = diff_writers(before, after);

  AsciiTable table({"process", "writes in last 50k ticks", "reads", "role"});
  for (ProcessId i = 0; i < cfg.n; ++i) {
    table.add_row({"p" + std::to_string(i), fmt_count(census.writes_by[i]),
                   fmt_count(after.reads_by[i] - before.reads_by[i]),
                   i == report.leader ? "LEADER" : ""});
  }
  std::cout << table.render()
            << "\ndistinct writers after stabilization: "
            << census.distinct_writers << " (Theorem 3: must be 1)\n";
  return census.distinct_writers == 1 ? 0 : 1;
}
