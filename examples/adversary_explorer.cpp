// Adversary explorer: a small CLI over the public API for poking at the
// algorithms under different adversaries. Prints the convergence report, the
// suspicion matrix and the write census for any configuration.
//
//   $ ./examples/adversary_explorer [algo] [world] [timer] [n] [seed] [horizon]
//     algo  : fig2 | fig5 | nwnr | stepclock | evsync     (default fig2)
//     world : sync | awb | adversarial | es               (default awb)
//     timer : perfect | chaotic | nonmonotone | capped    (default perfect)
//     n     : process count                               (default 6)
//     seed  : rng seed                                    (default 1)
//     horizon : ticks to run                              (default 300000)
//
// Example: watch the eventually-synchronous baseline flap forever under the
// escalating-burst adversary that AWB tolerates:
//   $ ./examples/adversary_explorer evsync adversarial perfect 6 1 300000
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/scenario.h"
#include "sim/trace.h"

namespace {

using namespace omega;

AlgoKind parse_algo(const std::string& s) {
  if (s == "fig2") return AlgoKind::kWriteEfficient;
  if (s == "fig5") return AlgoKind::kBounded;
  if (s == "nwnr") return AlgoKind::kNwnr;
  if (s == "stepclock") return AlgoKind::kStepClock;
  if (s == "evsync") return AlgoKind::kEvSync;
  throw std::runtime_error("unknown algo: " + s);
}

World parse_world(const std::string& s) {
  if (s == "sync") return World::kSync;
  if (s == "awb") return World::kAwb;
  if (s == "adversarial") return World::kAdversarialAwb;
  if (s == "es") return World::kEs;
  throw std::runtime_error("unknown world: " + s);
}

TimerKind parse_timer(const std::string& s) {
  if (s == "perfect") return TimerKind::kPerfect;
  if (s == "chaotic") return TimerKind::kChaoticPrefix;
  if (s == "nonmonotone") return TimerKind::kNonMonotone;
  if (s == "capped") return TimerKind::kSubDominating;
  throw std::runtime_error("unknown timer: " + s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace omega;
  try {
    ScenarioConfig cfg;
    SimTime horizon = 300000;
    if (argc > 1) cfg.algo = parse_algo(argv[1]);
    if (argc > 2) cfg.world = parse_world(argv[2]);
    if (argc > 3) cfg.timer = parse_timer(argv[3]);
    if (argc > 4) cfg.n = static_cast<std::uint32_t>(std::atoi(argv[4]));
    if (argc > 5) cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[5]));
    if (argc > 6) horizon = std::atoll(argv[6]);

    std::cout << banner("adversary explorer", {cfg.label()});
    auto d = make_scenario(cfg);
    TraceLog trace;
    SuspicionTracer tracer(d->memory().layout(), trace);
    d->memory().instr().set_observer(&tracer);
    d->set_trace(&trace);
    const auto mid_mark = horizon / 2;
    d->run_until(mid_mark);
    const auto mid = d->memory().instr().snapshot();
    d->run_until(horizon);
    const auto end = d->memory().instr().snapshot();
    const auto rep = d->metrics().convergence(d->plan());

    std::cout << "\nconverged        : " << (rep.converged ? "yes" : "NO")
              << '\n';
    if (rep.converged) {
      std::cout << "leader           : p" << rep.leader << '\n'
                << "stabilized at    : t=" << rep.time << '\n';
    }
    std::cout << "leader changes   : " << rep.total_changes
              << " (after GST: " << rep.changes_after_marker << ")\n\n";

    // Suspicion state (if the algorithm has a SUSPICIONS family).
    for (const char* group : {"SUSPICIONS", "SUSPICIONS_V", "SUSPEV"}) {
      GroupId g = 0;
      if (!d->memory().layout().find_group(group, g)) continue;
      const auto& grp = d->memory().layout().group(g);
      std::cout << group << " (final contents):\n";
      for (std::uint32_t r = 0; r < grp.rows; ++r) {
        std::cout << "  ";
        for (std::uint32_t c = 0; c < grp.cols; ++c) {
          const Cell cell = grp.cols == 1 ? d->memory().layout().cell(g, r)
                                          : d->memory().layout().cell(g, r, c);
          std::cout << d->memory().peek(cell) << ' ';
        }
        std::cout << '\n';
      }
    }

    AsciiTable t({"process", "writes (2nd half)", "reads (2nd half)",
                  "max timeout", "last output"});
    for (ProcessId i = 0; i < d->n(); ++i) {
      const auto out = d->metrics().last_output(i);
      t.add_row({"p" + std::to_string(i),
                 fmt_count(end.writes_by[i] - mid.writes_by[i]),
                 fmt_count(end.reads_by[i] - mid.reads_by[i]),
                 std::to_string(d->metrics().max_timeout_param(i)),
                 out == kNoProcess ? "-" : "p" + std::to_string(out)});
    }
    std::cout << '\n' << t.render();

    std::cout << "\nevent trace (tail):\n" << trace.render(15)
              << "\ntotals: " << trace.count(TraceEventKind::kLeaderChange)
              << " leader changes, " << trace.count(TraceEventKind::kSuspicion)
              << " suspicions, " << trace.count(TraceEventKind::kTimerArmed)
              << " timer armings\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
