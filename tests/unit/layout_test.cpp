#include "registers/layout.h"

#include <gtest/gtest.h>

#include <set>

namespace omega {
namespace {

Layout fig2_layout(std::uint32_t n) {
  LayoutBuilder b;
  b.add_matrix("SUSPICIONS", n, n, OwnerRule::kRowOwner, false);
  b.add_array("PROGRESS", n, OwnerRule::kRowOwner, true);
  b.add_array("STOP", n, OwnerRule::kRowOwner, true);
  return b.build();
}

TEST(Layout, SizeIsSumOfGroups) {
  const auto l = fig2_layout(4);
  EXPECT_EQ(l.size(), 16u + 4u + 4u);
  EXPECT_EQ(l.num_groups(), 3u);
}

TEST(Layout, CellsAreDistinct) {
  const auto l = fig2_layout(5);
  std::set<std::uint32_t> seen;
  GroupId susp = 0, prog = 0, stop = 0;
  ASSERT_TRUE(l.find_group("SUSPICIONS", susp));
  ASSERT_TRUE(l.find_group("PROGRESS", prog));
  ASSERT_TRUE(l.find_group("STOP", stop));
  for (std::uint32_t r = 0; r < 5; ++r) {
    for (std::uint32_t c = 0; c < 5; ++c) {
      seen.insert(l.cell(susp, r, c).index);
    }
    seen.insert(l.cell(prog, r).index);
    seen.insert(l.cell(stop, r).index);
  }
  EXPECT_EQ(seen.size(), l.size());
}

TEST(Layout, RowOwnership) {
  const auto l = fig2_layout(4);
  GroupId susp = 0;
  ASSERT_TRUE(l.find_group("SUSPICIONS", susp));
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      EXPECT_EQ(l.owner(l.cell(susp, r, c)), r);
    }
  }
}

TEST(Layout, ColOwnership) {
  LayoutBuilder b;
  const GroupId last = b.add_matrix("LAST", 3, 3, OwnerRule::kColOwner, false);
  const auto l = b.build();
  for (std::uint32_t r = 0; r < 3; ++r) {
    for (std::uint32_t c = 0; c < 3; ++c) {
      EXPECT_EQ(l.owner(l.cell(last, r, c)), c);
    }
  }
}

TEST(Layout, AnyOwnership) {
  LayoutBuilder b;
  const GroupId g = b.add_array("SUSPICIONS_V", 4, OwnerRule::kAny, false);
  const auto l = b.build();
  EXPECT_EQ(l.owner(l.cell(g, 2)), kAnyProcess);
}

TEST(Layout, CriticalAttribute) {
  const auto l = fig2_layout(3);
  GroupId susp = 0, prog = 0;
  ASSERT_TRUE(l.find_group("SUSPICIONS", susp));
  ASSERT_TRUE(l.find_group("PROGRESS", prog));
  EXPECT_FALSE(l.is_critical(l.cell(susp, 0, 1)));
  EXPECT_TRUE(l.is_critical(l.cell(prog, 0)));
}

TEST(Layout, CellNames) {
  const auto l = fig2_layout(3);
  GroupId susp = 0, prog = 0;
  ASSERT_TRUE(l.find_group("SUSPICIONS", susp));
  ASSERT_TRUE(l.find_group("PROGRESS", prog));
  EXPECT_EQ(l.cell_name(l.cell(susp, 1, 2)), "SUSPICIONS[1][2]");
  EXPECT_EQ(l.cell_name(l.cell(prog, 0)), "PROGRESS[0]");
}

TEST(Layout, GroupOfRoundTrips) {
  const auto l = fig2_layout(4);
  GroupId stop = 0;
  ASSERT_TRUE(l.find_group("STOP", stop));
  const Cell c = l.cell(stop, 3);
  EXPECT_EQ(l.group_of(c), stop);
}

TEST(Layout, OutOfRangeCellRejected) {
  const auto l = fig2_layout(3);
  GroupId prog = 0;
  ASSERT_TRUE(l.find_group("PROGRESS", prog));
  EXPECT_THROW(l.cell(prog, 3), InvariantViolation);
  EXPECT_THROW(l.owner(Cell{l.size()}), InvariantViolation);
}

TEST(Layout, ArrayAccessOnMatrixRejected) {
  const auto l = fig2_layout(3);
  GroupId susp = 0;
  ASSERT_TRUE(l.find_group("SUSPICIONS", susp));
  EXPECT_THROW(l.cell(susp, 1), InvariantViolation);
}

TEST(Layout, DuplicateGroupNameRejected) {
  LayoutBuilder b;
  b.add_array("X", 2, OwnerRule::kRowOwner, false);
  EXPECT_THROW(b.add_array("X", 2, OwnerRule::kRowOwner, false),
               InvariantViolation);
}

TEST(Layout, EmptyGroupRejected) {
  LayoutBuilder b;
  EXPECT_THROW(b.add_matrix("X", 0, 3, OwnerRule::kRowOwner, false),
               InvariantViolation);
}

TEST(Layout, FindGroupMiss) {
  const auto l = fig2_layout(2);
  GroupId g = 0;
  EXPECT_FALSE(l.find_group("NO_SUCH", g));
}

}  // namespace
}  // namespace omega
