// Health engine (obs/health.h): hysteresis (degrade_after bad ticks to
// publish, recover_after ok ticks to clear), immediate escalation once
// published, no flapping under alternating verdicts, overall = max over
// rules, and every published transition counted in
// obs.health_transitions. Rules are driven by a captured raw verdict so
// each tick is deterministic.
#include "obs/health.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace omega::obs {
namespace {

std::int64_t transitions_total() {
  for (const MetricSample& s : Registry::instance().scrape()) {
    if (s.name == "obs.health_transitions") return s.value;
  }
  return 0;
}

/// A monitor with one rule whose raw verdict is `*raw` each tick.
HealthRule driven_rule(const std::string& name, Health* raw,
                       std::uint32_t degrade_after,
                       std::uint32_t recover_after) {
  HealthRule r;
  r.name = name;
  r.degrade_after = degrade_after;
  r.recover_after = recover_after;
  r.eval = [raw](const TimeSeries&, std::string* reason) {
    if (*raw != Health::kOk) *reason = "driven bad";
    return *raw;
  };
  return r;
}

TEST(HealthMonitor, DegradeAfterAndRecoverAfterHysteresis) {
  TimeSeries ts(4);
  HealthMonitor hm;
  Health raw = Health::kOk;
  hm.add_rule(driven_rule("hyst", &raw, /*degrade_after=*/2,
                          /*recover_after=*/3));
  hm.evaluate(ts);
  EXPECT_EQ(hm.report().overall, Health::kOk);

  raw = Health::kDegraded;
  hm.evaluate(ts);  // bad tick 1 of 2: raw flips, published holds
  {
    const HealthReport rep = hm.report();
    EXPECT_EQ(rep.overall, Health::kOk);
    ASSERT_EQ(rep.rules.size(), 1u);
    EXPECT_EQ(rep.rules[0].raw, Health::kDegraded);
    EXPECT_EQ(rep.rules[0].published, Health::kOk);
  }
  hm.evaluate(ts);  // bad tick 2: publishes
  {
    const HealthReport rep = hm.report();
    EXPECT_EQ(rep.overall, Health::kDegraded);
    EXPECT_EQ(rep.rules[0].published, Health::kDegraded);
    EXPECT_EQ(rep.rules[0].reason, "driven bad");
  }

  raw = Health::kOk;
  hm.evaluate(ts);  // ok tick 1 of 3: still published
  hm.evaluate(ts);  // ok tick 2 of 3
  EXPECT_EQ(hm.report().overall, Health::kDegraded);
  hm.evaluate(ts);  // ok tick 3: clears
  EXPECT_EQ(hm.report().overall, Health::kOk);
  EXPECT_EQ(hm.report().ticks, 6u);
}

TEST(HealthMonitor, EscalationIsImmediateOncePublished) {
  TimeSeries ts(4);
  HealthMonitor hm;
  Health raw = Health::kDegraded;
  hm.add_rule(driven_rule("esc", &raw, /*degrade_after=*/2,
                          /*recover_after=*/4));
  hm.evaluate(ts);
  hm.evaluate(ts);  // published kDegraded
  ASSERT_EQ(hm.report().overall, Health::kDegraded);
  raw = Health::kCritical;
  hm.evaluate(ts);  // worse news does not wait for a streak
  EXPECT_EQ(hm.report().overall, Health::kCritical);
  // ...and de-escalation back to degraded does NOT happen while bad:
  // only a full recovery clears a published verdict.
  raw = Health::kDegraded;
  hm.evaluate(ts);
  EXPECT_EQ(hm.report().overall, Health::kCritical);
}

TEST(HealthMonitor, AlternatingVerdictNeverPublishes) {
  TimeSeries ts(4);
  HealthMonitor hm;
  Health raw = Health::kOk;
  hm.add_rule(driven_rule("flap", &raw, /*degrade_after=*/2,
                          /*recover_after=*/2));
  const std::int64_t before = transitions_total();
  for (int i = 0; i < 10; ++i) {
    raw = (i % 2 == 0) ? Health::kDegraded : Health::kOk;
    hm.evaluate(ts);
    EXPECT_EQ(hm.report().overall, Health::kOk) << "tick " << i;
  }
  // No published transition -> no counted transition.
  EXPECT_EQ(transitions_total(), before);
}

TEST(HealthMonitor, OverallIsTheWorstPublishedRule) {
  TimeSeries ts(4);
  HealthMonitor hm;
  Health a = Health::kOk;
  Health b = Health::kOk;
  hm.add_rule(driven_rule("rule-a", &a, 1, 1));
  hm.add_rule(driven_rule("rule-b", &b, 1, 1));
  a = Health::kDegraded;
  b = Health::kCritical;
  hm.evaluate(ts);
  const HealthReport rep = hm.report();
  EXPECT_EQ(rep.overall, Health::kCritical);
  ASSERT_EQ(rep.rules.size(), 2u);
  EXPECT_EQ(rep.rules[0].name, "rule-a");
  EXPECT_EQ(rep.rules[0].published, Health::kDegraded);
  EXPECT_EQ(rep.rules[1].name, "rule-b");
  EXPECT_EQ(rep.rules[1].published, Health::kCritical);
}

TEST(HealthMonitor, TransitionsAreCounted) {
  TimeSeries ts(4);
  HealthMonitor hm;
  Health raw = Health::kOk;
  hm.add_rule(driven_rule("count", &raw, 1, 1));
  const std::int64_t before = transitions_total();
  raw = Health::kDegraded;
  hm.evaluate(ts);  // ok -> degraded
  raw = Health::kOk;
  hm.evaluate(ts);  // degraded -> ok
  EXPECT_EQ(transitions_total(), before + 2);
}

TEST(Sampler, SampleNowFeedsSeriesAndRules) {
  // A synchronous tick must scrape the registry into the series and run
  // the rules; no background thread involved.
  counter("test.health.sampled").add(3);
  SamplerConfig cfg;
  cfg.capacity = 8;
  Sampler s(cfg);
  int evals = 0;
  HealthRule r;
  r.name = "saw-metric";
  r.degrade_after = 1;
  r.eval = [&evals](const TimeSeries& series, std::string* reason) {
    ++evals;
    if (series.latest_value("test.health.sampled") < 3) {
      *reason = "metric missing from the series";
      return Health::kDegraded;
    }
    return Health::kOk;
  };
  s.health().add_rule(r);
  std::uint64_t got_tick = 0;
  s.set_tick_listener([&got_tick](std::uint64_t tick,
                                  const std::vector<MetricSample>& scrape,
                                  const HealthReport& rep) {
    got_tick = tick;
    EXPECT_FALSE(scrape.empty());
    EXPECT_EQ(rep.overall, Health::kOk);
  });
  EXPECT_EQ(s.sample_now(), 1u);
  EXPECT_EQ(got_tick, 1u);
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(s.series().ticks(), 1u);
  EXPECT_GE(s.series().latest_value("test.health.sampled"), 3);
}

}  // namespace
}  // namespace omega::obs
