// v1.4 tracing codec (net/frame.h): TRACE_DUMP request/response
// round-trips with pagination arithmetic, rejection of truncated and
// count-bombed pages, trace ids riding APPEND/COMMIT_EVENT bodies, and
// v1.1 compatibility (short bodies decode with trace 0). Mirrors the
// hardening bar set by metrics_frame_test.cpp.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <vector>

namespace omega::net {
namespace {

std::vector<Frame> decode_all(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  while (dec.next(payload, len)) {
    Frame f;
    EXPECT_EQ(decode_payload(payload, len, f), DecodeResult::kOk);
    frames.push_back(f);
  }
  return frames;
}

obs::TraceRecord record(std::uint64_t ts, obs::TraceEvent ev,
                        std::uint64_t lo, std::uint64_t hi) {
  obs::TraceRecord r;
  r.ts_ns = ts;
  r.thread = 3;
  r.ev = ev;
  r.a = 41;
  r.b = 42;
  r.trace_lo = lo;
  r.trace_hi = hi;
  return r;
}

TEST(TraceFrame, RequestRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_trace_dump_request(buf, /*req_id=*/21, TraceDumpReqBody{4096});
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kTraceDump);
  EXPECT_EQ(frames[0].header.req_id, 21u);
  EXPECT_FALSE(frames[0].has_trace_resp);  // 4-byte body = request role
  EXPECT_EQ(frames[0].trace_req.start, 4096u);
}

TEST(TraceFrame, ResponseRoundTrip) {
  TraceDumpRespBody body;
  body.total = 9;
  body.start = 2;
  body.realtime_offset_ns = -123456789;  // i64 survives the wire
  body.records.push_back(record(1000, obs::TraceEvent::kAppendEnqueue,
                                0xAAAAu, 0));
  body.records.push_back(record(2000, obs::TraceEvent::kBatchSeal, 0xAAAAu,
                                0xBBBBu));
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, /*req_id=*/5, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  const Frame& f = frames[0];
  EXPECT_EQ(f.header.type, MsgType::kTraceDump);
  EXPECT_EQ(f.header.status, Status::kOk);
  ASSERT_TRUE(f.has_trace_resp);
  EXPECT_EQ(f.trace_resp.total, 9u);
  EXPECT_EQ(f.trace_resp.start, 2u);
  EXPECT_EQ(f.trace_resp.realtime_offset_ns, -123456789);
  ASSERT_EQ(f.trace_resp.records.size(), 2u);
  EXPECT_EQ(f.trace_resp.records[0].ts_ns, 1000u);
  EXPECT_EQ(f.trace_resp.records[0].thread, 3u);
  EXPECT_EQ(f.trace_resp.records[0].ev, obs::TraceEvent::kAppendEnqueue);
  EXPECT_EQ(f.trace_resp.records[0].a, 41u);
  EXPECT_EQ(f.trace_resp.records[0].b, 42u);
  EXPECT_EQ(f.trace_resp.records[0].trace_lo, 0xAAAAu);
  EXPECT_EQ(f.trace_resp.records[0].trace_hi, 0u);
  EXPECT_EQ(f.trace_resp.records[1].ev, obs::TraceEvent::kBatchSeal);
  EXPECT_EQ(f.trace_resp.records[1].trace_hi, 0xBBBBu);
}

TEST(TraceFrame, EmptyPageRoundTrip) {
  // A scrape of idle rings answers total=0 with no records; the 20-byte
  // body must still decode as a response, not a request.
  TraceDumpRespBody body;
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, 1, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].has_trace_resp);
  EXPECT_EQ(frames[0].trace_resp.total, 0u);
  EXPECT_TRUE(frames[0].trace_resp.records.empty());
}

TEST(TraceFrame, RecordWireSizeMatchesEncoding) {
  TraceDumpRespBody body;
  body.total = 1;
  body.records.push_back(record(7, obs::TraceEvent::kSlotDecide, 1, 2));
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, 1, body);
  // frame = u32 len | 12-byte header | u32 total | u32 start
  //         | i64 offset | u32 count | the one 45-byte record
  EXPECT_EQ(buf.size(), 4 + kHeaderBytes + 20 + kTraceRecordWireBytes);
}

TEST(TraceFrame, FullPageFitsThePayloadCap) {
  // The server's page size is derived from kMaxPayloadBytes; a full page
  // must encode without tripping the payload cap.
  constexpr std::uint32_t kPage = static_cast<std::uint32_t>(
      (kMaxPayloadBytes - kHeaderBytes - 20) / kTraceRecordWireBytes);
  TraceDumpRespBody body;
  body.total = kPage;
  for (std::uint32_t i = 0; i < kPage; ++i) {
    body.records.push_back(
        record(i, obs::TraceEvent::kBatchApply, i + 1, i + 2));
  }
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, 1, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].has_trace_resp);
  EXPECT_EQ(frames[0].trace_resp.records.size(), kPage);
  EXPECT_LE(buf.size() - 4, kMaxPayloadBytes);
}

TEST(TraceFrame, TruncatedRecordRejected) {
  TraceDumpRespBody body;
  body.total = 1;
  body.records.push_back(record(9, obs::TraceEvent::kMirrorPush, 5, 5));
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, 3, body);
  // Clip the payload mid-record and expect the decoder to call the body
  // bad rather than read past the end.
  const std::size_t payload_len = buf.size() - 4 - 11;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, payload_len, f),
            DecodeResult::kBadBody);
}

TEST(TraceFrame, CountBeyondPayloadRejected) {
  TraceDumpRespBody body;
  body.total = 2;
  body.records.push_back(record(9, obs::TraceEvent::kBatchPush, 5, 6));
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, 4, body);
  // Corrupt the count field (after total, start, and the i64 offset) to
  // claim a second record that is not there.
  const std::size_t count_at = 4 + kHeaderBytes + 16;
  buf[count_at] = 2;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(TraceFrame, CountBombRejectedBeforeReserve) {
  // A minimal 20-byte response body claiming count=0xFFFFFFFF must be
  // rejected by arithmetic, not by attempting a ~190 GB reserve() whose
  // bad_alloc would escape the client IO loop.
  TraceDumpRespBody body;
  std::vector<std::uint8_t> buf;
  encode_trace_dump_response(buf, Status::kOk, 4, body);
  const std::size_t count_at = 4 + kHeaderBytes + 16;
  buf[count_at] = 0xFF;
  buf[count_at + 1] = 0xFF;
  buf[count_at + 2] = 0xFF;
  buf[count_at + 3] = 0xFF;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(TraceFrame, AppendRequestCarriesTraceId) {
  AppendReqBody req;
  req.gid = 7;
  req.client = 11;
  req.seq = 13;
  req.command = 17;
  req.trace = 0xDEADBEEFCAFEF00DULL;
  std::vector<std::uint8_t> buf;
  encode_append_request(buf, /*req_id=*/2, req);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].has_append_req);
  EXPECT_EQ(frames[0].append_req.trace, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(frames[0].append_req.command, 17u);

  // v1.1 compatibility: clipping the trailing trace id yields the legacy
  // 32-byte request, which must decode as a request with trace 0.
  Frame legacy;
  ASSERT_EQ(decode_payload(buf.data() + 4, buf.size() - 4 - 8, legacy),
            DecodeResult::kOk);
  ASSERT_TRUE(legacy.has_append_req);
  EXPECT_EQ(legacy.append_req.trace, 0u);
  EXPECT_EQ(legacy.append_req.command, 17u);
}

TEST(TraceFrame, AppendResponseEchoesTraceId) {
  AppendRespBody resp;
  resp.gid = 7;
  resp.index = 99;
  resp.leader = 1;
  resp.epoch = 3;
  resp.trace = 0x12345678u;
  std::vector<std::uint8_t> buf;
  encode_append_response(buf, Status::kOk, /*req_id=*/2, resp);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  // The 36-byte v1.4 response sits between the 32-byte v1.1 request and
  // the 40-byte v1.4 request; role selection must not confuse it for
  // either.
  EXPECT_FALSE(frames[0].has_append_req);
  EXPECT_EQ(frames[0].append_resp.trace, 0x12345678u);
  EXPECT_EQ(frames[0].append_resp.index, 99u);

  // v1.1 compatibility: the clipped 28-byte response decodes with
  // trace 0.
  Frame legacy;
  ASSERT_EQ(decode_payload(buf.data() + 4, buf.size() - 4 - 8, legacy),
            DecodeResult::kOk);
  EXPECT_FALSE(legacy.has_append_req);
  EXPECT_EQ(legacy.append_resp.trace, 0u);
  EXPECT_EQ(legacy.append_resp.index, 99u);
}

TEST(TraceFrame, CommitEventCarriesTraceId) {
  std::vector<std::uint8_t> buf;
  encode_commit_event(buf, /*gid=*/5, /*index=*/42, /*value=*/777,
                      /*trace=*/0xFEEDu);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kCommitEvent);
  EXPECT_EQ(frames[0].commit.index, 42u);
  EXPECT_EQ(frames[0].commit.value, 777u);
  EXPECT_EQ(frames[0].commit.trace, 0xFEEDu);

  // v1.1 compatibility: the clipped 24-byte event decodes with trace 0.
  Frame legacy;
  ASSERT_EQ(decode_payload(buf.data() + 4, buf.size() - 4 - 8, legacy),
            DecodeResult::kOk);
  EXPECT_EQ(legacy.commit.value, 777u);
  EXPECT_EQ(legacy.commit.trace, 0u);
}

}  // namespace
}  // namespace omega::net
