// LeaderCacheEntry (svc/leader_cache.h): the single packed word the query
// frontend serves from. Covers epoch invalidation (every visible change
// bumps the epoch) and stale-read rejection (a fencing token taken at
// epoch E fails validation after any change) — paths the system tests only
// exercise indirectly through full elections.
#include "svc/leader_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace omega::svc {
namespace {

TEST(LeaderCache, StartsWithNoLeaderAtEpochZero) {
  LeaderCacheEntry cache;
  const LeaderView v = cache.load();
  EXPECT_EQ(v.leader, kNoProcess);
  EXPECT_EQ(v.epoch, 0u);
}

TEST(LeaderCache, PublishBumpsEpochOnlyOnChange) {
  LeaderCacheEntry cache;
  EXPECT_TRUE(cache.publish(ProcessId{2}));
  LeaderView v = cache.load();
  EXPECT_EQ(v.leader, 2u);
  EXPECT_EQ(v.epoch, 1u);

  // Republishing the same leader is the quiet-sweep fast path: no store,
  // no epoch movement, cached fencing tokens stay valid.
  EXPECT_FALSE(cache.publish(ProcessId{2}));
  v = cache.load();
  EXPECT_EQ(v.epoch, 1u);

  EXPECT_TRUE(cache.publish(ProcessId{5}));
  v = cache.load();
  EXPECT_EQ(v.leader, 5u);
  EXPECT_EQ(v.epoch, 2u);
}

TEST(LeaderCache, LosingAgreementIsAnEpochChange) {
  // leader → no-leader → leader again: each transition must invalidate,
  // otherwise a lease holder could survive an interregnum unnoticed.
  LeaderCacheEntry cache;
  ASSERT_TRUE(cache.publish(ProcessId{1}));
  ASSERT_TRUE(cache.publish(kNoProcess));
  LeaderView v = cache.load();
  EXPECT_EQ(v.leader, kNoProcess);
  EXPECT_EQ(v.epoch, 2u);
  ASSERT_TRUE(cache.publish(ProcessId{1}));
  v = cache.load();
  EXPECT_EQ(v.leader, 1u);
  EXPECT_EQ(v.epoch, 3u);
  EXPECT_FALSE(cache.publish(ProcessId{1}));
}

TEST(LeaderCache, StaleFencingTokenIsRejected) {
  // The contract lease holders rely on: authority obtained at epoch E is
  // valid iff the current epoch still equals E.
  LeaderCacheEntry cache;
  cache.publish(ProcessId{0});
  const LeaderView token = cache.load();  // holder caches (leader 0, ep 1)
  EXPECT_EQ(cache.load().epoch, token.epoch);  // still valid

  cache.publish(ProcessId{3});  // fail-over
  const LeaderView now = cache.load();
  EXPECT_NE(now.epoch, token.epoch) << "stale token must fail the compare";
  EXPECT_NE(now, token);

  // Even a fail-back to the original leader must not revalidate the old
  // token — it names a different reign.
  cache.publish(ProcessId{0});
  EXPECT_NE(cache.load().epoch, token.epoch);
}

TEST(LeaderCache, SupportsTheFullProcessRange) {
  // The packing reserves one byte for the leader; svc caps groups at 64
  // processes, so ids 0..63 and kNoProcess must all survive the trip.
  LeaderCacheEntry cache;
  std::uint64_t expected_epoch = 0;
  for (ProcessId pid = 0; pid < 64; ++pid) {
    ASSERT_TRUE(cache.publish(pid));
    const LeaderView v = cache.load();
    EXPECT_EQ(v.leader, pid);
    EXPECT_EQ(v.epoch, ++expected_epoch);
  }
}

TEST(LeaderCache, ReadersNeverObserveTornPairs) {
  // Single-writer/multi-reader torture: the reader must only ever see
  // (leader, epoch) pairs the writer actually published — leader follows
  // deterministically from epoch parity here — and epochs must be
  // monotone. A torn read or a non-atomic publish would break both.
  LeaderCacheEntry cache;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread reader([&] {
    std::uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const LeaderView v = cache.load();
      if (v.epoch < last_epoch) violations.fetch_add(1);
      last_epoch = v.epoch;
      if (v.epoch == 0) {
        if (v.leader != kNoProcess) violations.fetch_add(1);
      } else {
        const ProcessId expect =
            (v.epoch % 2 == 1) ? ProcessId{7} : ProcessId{33};
        if (v.leader != expect) violations.fetch_add(1);
      }
    }
  });

  for (int i = 0; i < 200000; ++i) {
    cache.publish(i % 2 == 0 ? ProcessId{7} : ProcessId{33});
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(cache.load().epoch, 200000u);
}

}  // namespace
}  // namespace omega::svc
