#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(Metrics, TracksQueriesAndChanges) {
  Metrics m(2);
  m.on_leader_query(0, 1, 10);
  m.on_leader_query(0, 1, 20);
  m.on_leader_query(0, 0, 30);
  EXPECT_EQ(m.queries(0), 3u);
  EXPECT_EQ(m.changes(0), 2u);  // first output counts as a change
  EXPECT_EQ(m.last_output(0), 0u);
  EXPECT_EQ(m.last_change(0), 30);
}

TEST(Metrics, ConvergedWhenAllAgreeOnCorrect) {
  Metrics m(3);
  const auto plan = CrashPlan::none(3);
  m.on_leader_query(0, 2, 10);
  m.on_leader_query(1, 2, 15);
  m.on_leader_query(2, 2, 40);
  const auto rep = m.convergence(plan);
  ASSERT_TRUE(rep.converged);
  EXPECT_EQ(rep.leader, 2u);
  EXPECT_EQ(rep.time, 40);
}

TEST(Metrics, NotConvergedOnDisagreement) {
  Metrics m(2);
  const auto plan = CrashPlan::none(2);
  m.on_leader_query(0, 0, 1);
  m.on_leader_query(1, 1, 1);
  EXPECT_FALSE(m.convergence(plan).converged);
}

TEST(Metrics, NotConvergedWhenElectingCrashed) {
  Metrics m(2);
  const auto plan = CrashPlan::at(2, {{1, 5}});
  m.on_leader_query(0, 1, 10);
  EXPECT_FALSE(m.convergence(plan).converged);
}

TEST(Metrics, CrashedProcessesExcludedFromAgreement) {
  Metrics m(3);
  const auto plan = CrashPlan::at(3, {{2, 5}});
  m.on_leader_query(0, 0, 10);
  m.on_leader_query(1, 0, 10);
  m.on_leader_query(2, 2, 4);  // stale pre-crash opinion — ignored
  const auto rep = m.convergence(plan);
  ASSERT_TRUE(rep.converged);
  EXPECT_EQ(rep.leader, 0u);
}

TEST(Metrics, SilentLiveProcessBlocksConvergenceClaim) {
  Metrics m(2);
  const auto plan = CrashPlan::none(2);
  m.on_leader_query(0, 0, 10);
  EXPECT_FALSE(m.convergence(plan).converged);  // p1 never sampled
}

TEST(Metrics, FlapMarkerCountsLateChanges) {
  Metrics m(1);
  m.set_flap_marker(100);
  const auto plan = CrashPlan::none(1);
  m.on_leader_query(0, 0, 10);   // before marker
  m.on_leader_query(0, 0, 150);  // no change
  m.on_leader_query(0, 0, 200);  // no change
  EXPECT_EQ(m.convergence(plan).changes_after_marker, 0u);
  Metrics m2(2);
  m2.set_flap_marker(100);
  const auto plan2 = CrashPlan::none(2);
  m2.on_leader_query(0, 0, 10);
  m2.on_leader_query(0, 1, 150);  // change after marker
  m2.on_leader_query(0, 0, 160);  // and back: two flaps
  m2.on_leader_query(1, 0, 10);
  EXPECT_EQ(m2.convergence(plan2).changes_after_marker, 2u);
}

TEST(Metrics, TimerArming) {
  Metrics m(1);
  m.on_timer_armed(0, 3, 24, 0);
  m.on_timer_armed(0, 9, 72, 100);
  m.on_timer_armed(0, 5, 40, 200);
  EXPECT_EQ(m.timers_armed(0), 3u);
  EXPECT_EQ(m.max_timeout_param(0), 9u);
}

TEST(DiffWriters, CountsWindowActivity) {
  InstrumentationSnapshot a, b;
  a.writes_by = {10, 5, 0};
  b.writes_by = {25, 5, 1};
  const auto c = diff_writers(a, b);
  EXPECT_EQ(c.writes_by, (std::vector<std::uint64_t>{15, 0, 1}));
  EXPECT_EQ(c.distinct_writers, 2u);
}

TEST(DiffWriters, RejectsOutOfOrderSnapshots) {
  InstrumentationSnapshot a, b;
  a.writes_by = {10};
  b.writes_by = {9};
  EXPECT_THROW(diff_writers(a, b), InvariantViolation);
}

TEST(WriteGapObserver, SplitsAtMarkerAndTracksMax) {
  LayoutBuilder lb;
  const GroupId crit = lb.add_array("CRIT", 2, OwnerRule::kRowOwner, true);
  const GroupId plain = lb.add_array("PLAIN", 2, OwnerRule::kRowOwner, false);
  const Layout layout = lb.build();

  WriteGapObserver obs(layout, /*target=*/0, /*marker=*/100);
  auto write = [&](ProcessId pid, Cell c, SimTime t) {
    obs.on_access(AccessEvent{pid, c, 1, t, true});
  };
  const Cell c0 = layout.cell(crit, 0);
  write(0, c0, 10);
  write(0, c0, 30);   // gap 20, before marker
  write(1, layout.cell(crit, 1), 31);  // other process: ignored
  write(0, layout.cell(plain, 0), 32); // non-critical: ignored
  obs.on_access(AccessEvent{0, c0, 1, 40, false});  // read: ignored
  write(0, c0, 150);  // gap 120: last_ was before marker → "before" bucket
  write(0, c0, 160);  // gap 10 after marker
  write(0, c0, 200);  // gap 40 after marker
  EXPECT_EQ(obs.writes_seen(), 5u);
  EXPECT_EQ(obs.gaps_before().total(), 2u);
  EXPECT_EQ(obs.gaps_after().total(), 2u);
  EXPECT_EQ(obs.max_gap_after(), 40);
}

}  // namespace
}  // namespace omega
