// Schedule model tests: AWB1 is "the timely process's inter-step delays are
// bounded by delta after GST"; everything else may be arbitrary.
#include "sim/schedule.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(SynchronousSchedule, UnitDelays) {
  auto s = make_synchronous_schedule();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s->next_step_delay(0, i, rng), 1);
    EXPECT_EQ(s->next_step_delay(7, i, rng), 1);
  }
}

TEST(AwbSchedule, TimelyProcessBoundedAfterGst) {
  const SimTime gst = 1000;
  const SimDuration delta = 8;
  auto s = make_awb_schedule(4, /*timely=*/2, gst, delta);
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto d = s->next_step_delay(2, gst + i, rng);
    ASSERT_GE(d, 1);
    ASSERT_LE(d, delta) << "AWB1 violated for the timely process";
  }
}

TEST(AwbSchedule, OthersUnboundedByDelta) {
  const SimTime gst = 1000;
  const SimDuration delta = 8;
  auto s = make_awb_schedule(4, 2, gst, delta);
  Rng rng(3);
  SimDuration max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    max_seen = std::max(max_seen, s->next_step_delay(0, gst + i, rng));
  }
  EXPECT_GT(max_seen, delta) << "non-timely process should exceed delta";
}

TEST(AwbSchedule, PreGstHasPauses) {
  auto s = make_awb_schedule(4, 0, /*gst=*/100000, 8);
  Rng rng(4);
  SimDuration max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    max_seen = std::max(max_seen, s->next_step_delay(0, 0, rng));
  }
  EXPECT_GT(max_seen, 8) << "pre-GST chaos should include long pauses";
}

TEST(AwbSchedule, RejectsBadTimely) {
  EXPECT_THROW(make_awb_schedule(4, 9, 0, 8), InvariantViolation);
}

TEST(EsSchedule, EveryoneBoundedAfterGst) {
  const SimTime gst = 500;
  const SimDuration bound = 6;
  auto s = make_es_schedule(5, gst, bound);
  Rng rng(5);
  for (ProcessId p = 0; p < 5; ++p) {
    for (int i = 0; i < 500; ++i) {
      const auto d = s->next_step_delay(p, gst + i, rng);
      ASSERT_GE(d, 1);
      ASSERT_LE(d, bound);
    }
  }
}

TEST(AdversarialAwbSchedule, EscalatingZeroDelayBursts) {
  auto s = make_adversarial_awb_schedule(3, /*timely=*/0, /*gst=*/0,
                                         /*delta=*/8, /*pause=*/64,
                                         /*initial_burst=*/4);
  Rng rng(6);
  // Process 1 (escalating): expect runs of zero delays separated by pauses,
  // with run lengths growing by the initial burst length each cycle.
  std::vector<std::uint64_t> burst_lengths;
  std::uint64_t current = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto d = s->next_step_delay(1, 10 + i, rng);
    if (d == 0) {
      ++current;
    } else if (current > 0) {
      burst_lengths.push_back(current);
      current = 0;
    }
  }
  ASSERT_GE(burst_lengths.size(), 3u);
  EXPECT_EQ(burst_lengths[0], 4u);
  EXPECT_EQ(burst_lengths[1], 8u);
  EXPECT_EQ(burst_lengths[2], 12u);
}

TEST(AdversarialAwbSchedule, TimelyProcessStillTimely) {
  auto s = make_adversarial_awb_schedule(3, 0, 0, 8, 64, 4);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto d = s->next_step_delay(0, i, rng);
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 8);
  }
}

TEST(ProfileSchedule, DescribeRoundtrip) {
  auto s = make_awb_schedule(4, 1, 100, 8);
  EXPECT_NE(s->describe().find("awb"), std::string::npos);
  EXPECT_NE(s->describe().find("p1"), std::string::npos);
}

TEST(ProfileSchedule, BadPidRejected) {
  auto s = make_es_schedule(3, 100, 4);
  Rng rng(8);
  EXPECT_THROW(s->next_step_delay(3, 0, rng), InvariantViolation);
}

}  // namespace
}  // namespace omega
