// WatchHub under concurrency: subscriber churn racing publishes, unwatch
// racing an epoch push, commit-channel independence, and slow-subscriber
// isolation (a stalled loop must not delay delivery to its siblings).
#include "net/watch_hub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace omega::net {
namespace {

using namespace std::chrono_literals;

/// N running event loops with delivery counters per loop.
struct HubRig {
  explicit HubRig(std::uint32_t n_loops, std::chrono::milliseconds delay = 0ms)
      : loops(n_loops), threads(n_loops), epoch_hits(n_loops),
        commit_hits(n_loops) {
    std::vector<EventLoop*> raw;
    for (auto& l : loops) raw.push_back(&l);
    for (auto& h : epoch_hits) h.store(0);
    for (auto& h : commit_hits) h.store(0);
    hub = std::make_unique<WatchHub>(
        std::move(raw),
        [this, delay](std::uint32_t loop, svc::GroupId, svc::LeaderView) {
          // Loop 0 optionally plays the slow subscriber.
          if (loop == 0 && delay > 0ms) std::this_thread::sleep_for(delay);
          epoch_hits[loop].fetch_add(1, std::memory_order_relaxed);
        },
        [this](std::uint32_t loop, svc::GroupId, std::uint64_t,
               const std::vector<std::uint64_t>& values,
               const std::vector<std::uint64_t>&) {
          commit_hits[loop].fetch_add(values.size(),
                                      std::memory_order_relaxed);
        });
    for (std::uint32_t i = 0; i < n_loops; ++i) {
      threads[i] = std::thread([this, i] { loops[i].run(); });
    }
  }

  ~HubRig() {
    for (auto& l : loops) l.stop();
    for (auto& t : threads) {
      if (t.joinable()) t.join();
    }
  }

  /// Blocks until every loop has drained its queued tasks.
  void quiesce() {
    for (auto& l : loops) {
      std::atomic<bool> done{false};
      l.post([&done] { done.store(true, std::memory_order_release); });
      while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(1ms);
      }
    }
  }

  std::vector<EventLoop> loops;
  std::vector<std::thread> threads;
  std::unique_ptr<WatchHub> hub;
  std::vector<std::atomic<std::uint64_t>> epoch_hits;
  std::vector<std::atomic<std::uint64_t>> commit_hits;
};

TEST(WatchHub, DeliversOnlyToSubscribedLoops) {
  HubRig rig(3);
  rig.hub->add_watch(1, 0);
  rig.hub->add_watch(1, 2);
  rig.hub->publish(1, svc::LeaderView{0, 1});
  rig.hub->publish(2, svc::LeaderView{1, 1});  // nobody watches gid 2
  rig.quiesce();
  EXPECT_EQ(rig.epoch_hits[0].load(), 1u);
  EXPECT_EQ(rig.epoch_hits[1].load(), 0u);
  EXPECT_EQ(rig.epoch_hits[2].load(), 1u);
  EXPECT_EQ(rig.hub->published(), 2u);
  EXPECT_EQ(rig.hub->deliveries(), 2u);
}

TEST(WatchHub, CommitChannelIsIndependentOfEpochChannel) {
  HubRig rig(2);
  rig.hub->add_watch(5, 0);         // epoch subscriber on loop 0
  rig.hub->add_commit_watch(5, 1);  // commit subscriber on loop 1
  rig.hub->publish(5, svc::LeaderView{2, 3});
  rig.hub->publish_commit(5, 0, 42);
  rig.quiesce();
  EXPECT_EQ(rig.epoch_hits[0].load(), 1u);
  EXPECT_EQ(rig.epoch_hits[1].load(), 0u);
  EXPECT_EQ(rig.commit_hits[0].load(), 0u);
  EXPECT_EQ(rig.commit_hits[1].load(), 1u);
  EXPECT_EQ(rig.hub->commits_published(), 1u);
}

TEST(WatchHub, SubscriberChurnDuringFanoutIsSafe) {
  // Threads add/remove watches on every loop while a publisher hammers the
  // same gids: no crash, no negative refcount, and after the dust settles
  // a fresh subscription still receives pushes. (Run under TSan in CI.)
  HubRig rig(4);
  std::atomic<bool> stop{false};
  std::vector<std::thread> churners;
  for (std::uint32_t loop = 0; loop < 4; ++loop) {
    churners.emplace_back([&rig, &stop, loop] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (svc::GroupId gid = 0; gid < 8; ++gid) {
          rig.hub->add_watch(gid, loop);
          rig.hub->add_commit_watch(gid, loop);
        }
        for (svc::GroupId gid = 0; gid < 8; ++gid) {
          rig.hub->remove_watch(gid, loop);
          rig.hub->remove_commit_watch(gid, loop);
        }
      }
    });
  }
  std::thread publisher([&rig, &stop] {
    std::uint64_t epoch = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (svc::GroupId gid = 0; gid < 8; ++gid) {
        rig.hub->publish(gid, svc::LeaderView{0, epoch});
        rig.hub->publish_commit(gid, epoch, 7);
      }
      ++epoch;
    }
  });
  std::this_thread::sleep_for(200ms);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : churners) t.join();
  publisher.join();
  rig.quiesce();

  // Post-churn sanity: a stable subscription still gets exactly its push.
  const std::uint64_t before = rig.epoch_hits[2].load();
  rig.hub->add_watch(100, 2);
  rig.hub->publish(100, svc::LeaderView{1, 9});
  rig.quiesce();
  EXPECT_EQ(rig.epoch_hits[2].load(), before + 1);
}

TEST(WatchHub, UnwatchRacingAPublishNeverDeliversLate) {
  // remove_watch returning means no *future* publish targets the loop; a
  // publish that already snapshotted may still deliver (at-least-once).
  // The invariant under test: after remove + quiesce, further publishes
  // are silent.
  HubRig rig(2);
  for (int round = 0; round < 50; ++round) {
    rig.hub->add_watch(7, 1);
    std::thread racer([&rig] { rig.hub->publish(7, svc::LeaderView{0, 1}); });
    rig.hub->remove_watch(7, 1);
    racer.join();
    rig.quiesce();
    const std::uint64_t settled = rig.epoch_hits[1].load();
    rig.hub->publish(7, svc::LeaderView{0, 2});
    rig.quiesce();
    EXPECT_EQ(rig.epoch_hits[1].load(), settled)
        << "publish after unwatch+quiesce must be silent (round " << round
        << ")";
  }
}

TEST(WatchHub, SlowSubscriberDoesNotStallSiblings) {
  // Loop 0's delivery callback sleeps 50ms per event; loop 1's must keep
  // flowing at full speed regardless — fan-out posts, it never waits.
  HubRig rig(2, /*delay=*/50ms);
  rig.hub->add_watch(1, 0);
  rig.hub->add_watch(1, 1);
  constexpr std::uint64_t kEvents = 20;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    rig.hub->publish(1, svc::LeaderView{0, i});
  }
  // The publisher itself must not have been throttled by the slow loop
  // (its 20-event backlog costs >= 1s of sleeping).
  const auto publish_cost = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(publish_cost, 500ms) << "publish must never block on delivery";
  // The fast loop drains its 20 events long before the slow one can.
  const auto fast_deadline = t0 + 30s;
  while (rig.epoch_hits[1].load() < kEvents &&
         std::chrono::steady_clock::now() < fast_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  const auto fast_elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(rig.epoch_hits[1].load(), kEvents);
  const auto slow_deadline = t0 + 60s;
  while (rig.epoch_hits[0].load() < kEvents &&
         std::chrono::steady_clock::now() < slow_deadline) {
    std::this_thread::sleep_for(5ms);
  }
  const auto slow_elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(rig.epoch_hits[0].load(), kEvents);
  EXPECT_GE(slow_elapsed, 1s) << "the slow loop serializes its sleeps";
  EXPECT_LT(fast_elapsed, slow_elapsed)
      << "the fast loop must not inherit the slow loop's backlog";
}

}  // namespace
}  // namespace omega::net
