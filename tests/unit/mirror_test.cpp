// MirroredMemory + register-push transport torture tests: single-process
// equivalence with AtomicMemory, write-observer FIFO (stores and pokes),
// per-cell monotonicity of pushed heartbeat counters under arbitrary
// cross-owner interleavings, torn-batch injection (a decision visible
// before its spill rows must stall the pump, never misread), and the
// MirrorTransport loopback path with dirty-cell snapshots on connect.
#include "registers/mirror.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "consensus/log_pump.h"
#include "net/register_peer.h"
#include "rt/atomic_memory.h"

namespace omega {
namespace {

Layout small_layout(std::uint32_t n) {
  LayoutBuilder b;
  b.add_array("HB", n, OwnerRule::kRowOwner, /*critical=*/true);
  b.add_matrix("SUS", n, n, OwnerRule::kRowOwner, /*critical=*/false);
  b.add_buffer("SPILL", 2, 4);
  return b.build();
}

TEST(MirroredMemory, ZeroRemoteNodesReproducesAtomicMemory) {
  const std::uint32_t n = 3;
  AtomicMemory atomic(small_layout(n), n);
  MirroredMemory all_local(small_layout(n), n, /*local_mask=*/0);
  MirroredMemory full_mask(small_layout(n), n, all_local_mask(n));
  EXPECT_FALSE(all_local.has_remote());
  EXPECT_FALSE(full_mask.has_remote());

  // Drive the same access sequence through all three backends: the
  // mirror with no remote nodes must be register-for-register identical.
  const Layout& l = atomic.layout();
  for (std::uint32_t round = 0; round < 8; ++round) {
    for (ProcessId p = 0; p < n; ++p) {
      for (MemoryBackend* m :
           std::initializer_list<MemoryBackend*>{&atomic, &all_local,
                                                 &full_mask}) {
        m->write(p, l.cell(0, p), 100 * round + p);
        m->write(p, l.cell(1, p, (p + round) % n), round);
        m->poke(l.cell(2, round % 2, p), 7000 + round);
        EXPECT_EQ(m->read(p, l.cell(0, (p + 1) % n)),
                  atomic.read(p, l.cell(0, (p + 1) % n)));
      }
    }
  }
  for (std::uint32_t i = 0; i < l.size(); ++i) {
    ASSERT_EQ(atomic.peek(Cell{i}), all_local.peek(Cell{i}))
        << "diverged at " << l.cell_name(Cell{i});
    ASSERT_EQ(atomic.peek(Cell{i}), full_mask.peek(Cell{i}));
  }
  // No remote ⇒ nothing to push, ever.
  EXPECT_FALSE(all_local.should_push(l.cell(0, 0)));
}

TEST(MirroredMemory, WriteObserverSeesStoresAndPokesInProgramOrder) {
  const std::uint32_t n = 2;
  MirroredMemory mem(small_layout(n), n, /*local_mask=*/0b01);
  ASSERT_TRUE(mem.has_remote());
  std::vector<std::pair<std::uint32_t, std::uint64_t>> seen;
  mem.set_write_observer([&](Cell c, std::uint64_t v) {
    seen.emplace_back(c.index, v);
  });
  const Layout& l = mem.layout();
  mem.write(0, l.cell(0, 0), 1);       // owned store
  mem.poke(l.cell(2, 0, 1), 42);       // data-plane poke
  mem.write(0, l.cell(1, 0, 1), 9);    // another owned store
  mem.poke(l.cell(2, 0, 2), 43);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], std::make_pair(l.cell(0, 0).index, std::uint64_t{1}));
  EXPECT_EQ(seen[1], std::make_pair(l.cell(2, 0, 1).index, std::uint64_t{42}));
  EXPECT_EQ(seen[2], std::make_pair(l.cell(1, 0, 1).index, std::uint64_t{9}));
  EXPECT_EQ(seen[3], std::make_pair(l.cell(2, 0, 2).index, std::uint64_t{43}));

  // apply_push must NOT echo into the observer (no feedback loops).
  mem.apply_push(l.cell(0, 1), 77);
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(mem.peek(l.cell(0, 1)), 77u);

  // Push responsibility: local 1WnR cells and kAny spill cells, never a
  // remote owner's cells.
  EXPECT_TRUE(mem.should_push(l.cell(0, 0)));
  EXPECT_TRUE(mem.should_push(l.cell(2, 1, 3)));
  EXPECT_FALSE(mem.should_push(l.cell(0, 1)));
}

TEST(MirroredMemory, PushedHeartbeatsStayMonotonePerCellAcrossOwnerInterleavings) {
  // Two remote owners push heartbeat increments; their streams interleave
  // arbitrarily at the receiver. Per-cell (per-owner) order is preserved
  // because each stream is applied FIFO — the receiver's reads of any one
  // cell must be monotone no matter how the two streams mesh.
  const std::uint32_t n = 3;
  MirroredMemory mem(small_layout(n), n, /*local_mask=*/0b001);
  const Layout& l = mem.layout();
  const Cell hb1 = l.cell(0, 1);
  const Cell hb2 = l.cell(0, 2);
  std::vector<std::uint64_t> s1, s2;
  for (std::uint64_t v = 1; v <= 200; ++v) s1.push_back(v);
  for (std::uint64_t v = 1; v <= 200; ++v) s2.push_back(v * 3);

  std::uint64_t last1 = 0, last2 = 0;
  std::size_t i1 = 0, i2 = 0;
  std::uint64_t mix = 0x9E3779B97F4A7C15ull;
  while (i1 < s1.size() || i2 < s2.size()) {
    mix ^= mix << 13;
    mix ^= mix >> 7;
    mix ^= mix << 17;
    // Arbitrary interleaving, including long runs of one stream.
    const bool pick1 = i2 >= s2.size() || (i1 < s1.size() && (mix & 3) != 0);
    if (pick1) {
      mem.apply_push(hb1, s1[i1++]);
    } else {
      mem.apply_push(hb2, s2[i2++]);
    }
    const std::uint64_t r1 = mem.read(0, hb1);
    const std::uint64_t r2 = mem.read(0, hb2);
    EXPECT_GE(r1, last1) << "heartbeat cell went backwards";
    EXPECT_GE(r2, last2) << "heartbeat cell went backwards";
    last1 = r1;
    last2 = r2;
  }
  EXPECT_EQ(last1, 200u);
  EXPECT_EQ(last2, 600u);
}

/// Pump host for a follower that never proposes: harvest-only.
class ObserverHost final : public PumpHost {
 public:
  ObserverHost(std::uint32_t n, MemoryBackend& mem) : n_(n), mem_(mem) {}
  std::uint32_t n() const override { return n_; }
  bool live(ProcessId) const override { return false; }
  void spawn(ProcessId, ProcTask) override {
    FAIL() << "observer pump must not spawn proposers";
  }
  MemoryBackend& memory() override { return mem_; }

 private:
  std::uint32_t n_;
  MemoryBackend& mem_;
};

class NullSource final : public BatchSource {
 public:
  std::uint32_t pull(std::uint32_t, std::vector<std::uint64_t>&,
                     std::uint64_t&, std::vector<std::uint64_t>&) override {
    return 0;
  }
};

TEST(MirrorPump, TornBatchDescriptorBeforeRowsStallsThenRecovers) {
  // A follower whose mirror shows a decided descriptor but not yet the
  // spill rows (reordered injection — in production impossible within
  // one FIFO stream, but decisions can arrive via ANOTHER node's stream
  // first) must stall, not misread; once the rows and seal arrive the
  // slot harvests with the exact sealed payload.
  const std::uint32_t n = 2;
  const std::uint32_t window = 2, max_batch = 3;
  ReplicatedLog log(n, /*capacity=*/8);
  BatchBuffer buffer("LOG", /*banks=*/n, /*rows=*/window, max_batch);
  LayoutBuilder b;
  log.declare(b);
  buffer.declare(b);
  Layout layout = b.build();

  // Leader-side image: seal a 3-command batch for slot 0 in bank 0 and
  // decide the slot, recording every store in write order.
  MirroredMemory leader(layout, n, /*local_mask=*/0b01);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> stream;
  leader.set_write_observer([&](Cell c, std::uint64_t v) {
    if (leader.should_push(c)) stream.emplace_back(c.index, v);
  });
  log.bind(layout);
  buffer.bind(layout);
  const std::uint64_t cmds[3] = {111, 222, 333};
  for (std::uint32_t i = 0; i < 3; ++i) {
    buffer.store_cmd(leader, 0, 0, i, cmds[i]);
  }
  buffer.store_seal(leader, 0, 0, pack_seal(0, batch_checksum(cmds, 3)));
  const std::uint64_t descriptor = encode_batch_descriptor(3, /*sealer=*/0);
  GroupId dec_group = 0;
  ASSERT_TRUE(layout.find_group("L0DEC", dec_group));
  const Cell dec0 = layout.cell(dec_group, 0);
  leader.poke(dec0, (1ull << 32) | descriptor);  // decided-bit | value

  // Follower: apply the DECISION first (as if it arrived via another
  // replica's stream), rows withheld.
  MirroredMemory follower(layout, n, /*local_mask=*/0b10);
  ObserverHost host(n, follower);
  LogPump pump(log, host, window,
               LogPump::BatchPolicy{max_batch, &buffer, /*sealer=*/1});
  follower.apply_push(dec0, (1ull << 32) | descriptor);

  NullSource source;
  std::vector<LogPump::Commit> commits;
  EXPECT_EQ(pump.tick(source, commits), 0u) << "must stall on torn batch";
  EXPECT_EQ(pump.committed(), 0u);
  EXPECT_GE(pump.payload_stalls(), 1u);

  // Now deliver the leader's stream (rows before seal, its write order).
  for (const auto& [cell, value] : stream) {
    if (cell == dec0.index) continue;  // already applied out of order
    follower.apply_push(Cell{cell}, value);
  }
  EXPECT_EQ(pump.tick(source, commits), 3u);
  ASSERT_EQ(commits.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(commits[i].slot, 0u);
    EXPECT_EQ(commits[i].value, cmds[i]);
    EXPECT_FALSE(commits[i].local) << "sealed elsewhere";
  }
  EXPECT_EQ(pump.committed(), 1u);
  EXPECT_EQ(pump.started(), 1u) << "observer harvest fast-forwards cursors";
}

TEST(MirrorTransport, LoopbackPushesApplyInOrderWithSnapshotOnConnect) {
  const std::uint32_t n = 2;
  Layout layout = small_layout(n);

  // Node 0 hosts replica 0, node 1 hosts replica 1. Build B first so A
  // knows its port; neither is started yet.
  net::MirrorConfig cfg_b;
  cfg_b.node = 1;
  net::MirrorTransport tb(cfg_b);  // listener bound at construction

  net::MirrorConfig cfg_a;
  cfg_a.node = 0;
  cfg_a.reconnect_ms = 20;
  cfg_a.peers.push_back(net::MirrorPeerConfig{1, "127.0.0.1", tb.port()});
  net::MirrorTransport ta(cfg_a);

  MirroredMemory ma(layout, n, 0b01);
  MirroredMemory mb(layout, n, 0b10);
  ta.add_group(7, &ma);
  tb.add_group(7, &mb);
  ma.set_write_observer([&](Cell c, std::uint64_t v) {
    if (ma.should_push(c)) ta.on_local_write(7, c, v);
  });

  // Writes BEFORE the streams exist only mark cells dirty — the connect
  // snapshot must still deliver them.
  const Cell hb0 = layout.cell(0, 0);
  ma.write(0, hb0, 41);

  ta.start();
  tb.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (mb.peek(hb0) != 41 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(mb.peek(hb0), 41u) << "snapshot-on-connect must deliver";
  EXPECT_GE(ta.stats().snapshots, 1u);

  // Live pushes: a run of heartbeat increments arrives monotonically.
  for (std::uint64_t v = 42; v <= 200; ++v) ma.write(0, hb0, v);
  std::uint64_t last = mb.peek(hb0);
  while (mb.peek(hb0) != 200 && std::chrono::steady_clock::now() < deadline) {
    const std::uint64_t cur = mb.peek(hb0);
    EXPECT_GE(cur, last);
    last = cur;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(mb.peek(hb0), 200u);

  // Acks flowed back: backlog drains and lag samples exist.
  const auto ack_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (ta.max_unacked_frames() > 0 &&
         std::chrono::steady_clock::now() < ack_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(ta.max_unacked_frames(), 0u);
  std::vector<std::int64_t> lags;
  ta.lag_samples(lags);
  EXPECT_FALSE(lags.empty());
  EXPECT_EQ(ta.connected_peers(), 1u);

  ta.stop();
  tb.stop();
}

}  // namespace
}  // namespace omega
