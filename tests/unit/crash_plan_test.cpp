#include "sim/crash_plan.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(CrashPlan, NoneHasNoFaults) {
  const auto p = CrashPlan::none(4);
  EXPECT_EQ(p.num_faulty(), 0u);
  EXPECT_EQ(p.correct().size(), 4u);
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_TRUE(p.is_correct(i));
    EXPECT_EQ(p.crash_time(i), kNever);
  }
}

TEST(CrashPlan, ExplicitCrashes) {
  const auto p = CrashPlan::at(4, {{1, 100}, {3, 50}});
  EXPECT_EQ(p.num_faulty(), 2u);
  EXPECT_EQ(p.crash_time(1), 100);
  EXPECT_EQ(p.crash_time(3), 50);
  EXPECT_FALSE(p.crashed_by(1, 99));
  EXPECT_TRUE(p.crashed_by(1, 100));
  EXPECT_EQ(p.correct(), (std::vector<ProcessId>{0, 2}));
}

TEST(CrashPlan, DuplicateCrashKeepsEarliest) {
  const auto p = CrashPlan::at(3, {{0, 200}, {0, 100}});
  EXPECT_EQ(p.crash_time(0), 100);
}

TEST(CrashPlan, AllCrashRejected) {
  EXPECT_THROW(CrashPlan::at(2, {{0, 1}, {1, 1}}), InvariantViolation);
}

TEST(CrashPlan, TolerateNMinusOneCrashes) {
  // The paper's algorithms are independent of t: up to n-1 crashes allowed.
  const auto p = CrashPlan::at(4, {{1, 1}, {2, 1}, {3, 1}});
  EXPECT_EQ(p.num_faulty(), 3u);
  EXPECT_EQ(p.correct(), (std::vector<ProcessId>{0}));
}

TEST(CrashPlan, RandomSparesDesignatedProcess) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto p = CrashPlan::random(6, 5, 1000, /*spared=*/3, rng);
    EXPECT_TRUE(p.is_correct(3));
    EXPECT_EQ(p.num_faulty(), 5u);
  }
}

TEST(CrashPlan, RandomVictimsDistinct) {
  Rng rng(7);
  const auto p = CrashPlan::random(8, 4, 500, 0, rng);
  EXPECT_EQ(p.num_faulty(), 4u);
  for (ProcessId i = 0; i < 8; ++i) {
    if (!p.is_correct(i)) {
      EXPECT_GE(p.crash_time(i), 0);
      EXPECT_LE(p.crash_time(i), 500);
    }
  }
}

TEST(CrashPlan, RandomCannotKillEveryone) {
  Rng rng(1);
  EXPECT_THROW(CrashPlan::random(3, 3, 100, 0, rng), InvariantViolation);
}

TEST(CrashPlan, PauseIsNotFaulty) {
  auto p = CrashPlan::none(3);
  p.pause_forever(1, 300);
  EXPECT_TRUE(p.is_correct(1));  // paused ≠ crashed
  EXPECT_EQ(p.pause_time(1), 300);
  EXPECT_EQ(p.halt_time(1), 300);
  EXPECT_EQ(p.halt_time(0), kNever);
}

TEST(CrashPlan, HaltIsMinOfCrashAndPause) {
  auto p = CrashPlan::at(3, {{1, 100}});
  p.pause_forever(1, 200);
  EXPECT_EQ(p.halt_time(1), 100);
  p.pause_forever(2, 50);
  EXPECT_EQ(p.halt_time(2), 50);
}

}  // namespace
}  // namespace omega
