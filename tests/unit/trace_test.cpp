#include "sim/trace.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(TraceLog, RecordsAndCounts) {
  TraceLog log;
  log.record({10, TraceEventKind::kLeaderChange, 0, kNoProcess, 1, 2});
  log.record({20, TraceEventKind::kSuspicion, 1, 2, 3, 0});
  log.record({30, TraceEventKind::kSuspicion, 1, 3, 1, 0});
  EXPECT_EQ(log.events().size(), 3u);
  EXPECT_EQ(log.count(TraceEventKind::kSuspicion), 2u);
  EXPECT_EQ(log.count(TraceEventKind::kLeaderChange), 1u);
  EXPECT_EQ(log.of_kind(TraceEventKind::kSuspicion).size(), 2u);
}

TEST(TraceLog, CapacityEvictsOldestButKeepsCounting) {
  TraceLog log(16);
  for (int i = 0; i < 100; ++i) {
    log.record({i, TraceEventKind::kTimerArmed, 0, kNoProcess, 1, 1});
  }
  EXPECT_LE(log.events().size(), 16u);
  EXPECT_EQ(log.count(TraceEventKind::kTimerArmed), 100u);
  EXPECT_GT(log.dropped(), 0u);
  // The retained suffix is the most recent events, in order.
  EXPECT_EQ(log.events().back().when, 99);
  for (std::size_t i = 1; i < log.events().size(); ++i) {
    EXPECT_LT(log.events()[i - 1].when, log.events()[i].when);
  }
}

TEST(TraceEvent, Describe) {
  const TraceEvent lc{15, TraceEventKind::kLeaderChange, 3, kNoProcess, 2, 0};
  EXPECT_EQ(lc.describe(), "t=15  p3 leader p2 -> p0");
  const TraceEvent sus{7, TraceEventKind::kSuspicion, 1, 4, 9, 0};
  EXPECT_EQ(sus.describe(), "t=7  p1 suspects p4 (count 9)");
  const TraceEvent crash{3, TraceEventKind::kHalt, 2, kNoProcess, 1, 0};
  EXPECT_EQ(crash.describe(), "t=3  p2 CRASHES");
  const TraceEvent pause{3, TraceEventKind::kHalt, 2, kNoProcess, 0, 0};
  EXPECT_EQ(pause.describe(), "t=3  p2 pauses forever");
}

TEST(TraceLog, RenderShowsTail) {
  TraceLog log;
  for (int i = 0; i < 10; ++i) {
    log.record({i, TraceEventKind::kTimerArmed, 0, kNoProcess, 1, 8});
  }
  const std::string out = log.render(3);
  EXPECT_NE(out.find("t=9"), std::string::npos);
  EXPECT_EQ(out.find("t=0 "), std::string::npos);
  EXPECT_NE(out.find("earlier events"), std::string::npos);
}

TEST(SuspicionTracer, ExtractsSubjectFromMatrix) {
  LayoutBuilder b;
  const GroupId susp = b.add_matrix("SUSPICIONS", 4, 4,
                                    OwnerRule::kRowOwner, false);
  const GroupId other = b.add_array("PROGRESS", 4, OwnerRule::kRowOwner, true);
  const Layout layout = b.build();
  TraceLog log;
  SuspicionTracer tracer(layout, log);
  tracer.on_access({1, layout.cell(susp, 1, 3), 5, 100, true});
  tracer.on_access({1, layout.cell(susp, 1, 3), 5, 100, false});  // read: no
  tracer.on_access({1, layout.cell(other, 1), 5, 100, true});     // other: no
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].actor, 1u);
  EXPECT_EQ(log.events()[0].subject, 3u);
  EXPECT_EQ(log.events()[0].a, 5u);
}

TEST(SuspicionTracer, HandlesNwnrVector) {
  LayoutBuilder b;
  const GroupId susp = b.add_array("SUSPICIONS_V", 4, OwnerRule::kAny, false);
  const Layout layout = b.build();
  TraceLog log;
  SuspicionTracer tracer(layout, log);
  tracer.on_access({0, layout.cell(susp, 2), 1, 5, true});
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].subject, 2u);
}

class CountingObserver final : public AccessObserver {
 public:
  void on_access(const AccessEvent&) override { ++count; }
  int count = 0;
};

TEST(ObserverFanout, ForwardsToAll) {
  ObserverFanout fan;
  CountingObserver a, b;
  fan.add(&a);
  fan.add(&b);
  fan.on_access({0, Cell{0}, 0, 0, true});
  fan.on_access({0, Cell{0}, 0, 0, false});
  EXPECT_EQ(a.count, 2);
  EXPECT_EQ(b.count, 2);
  EXPECT_THROW(fan.add(nullptr), InvariantViolation);
}

}  // namespace
}  // namespace omega
