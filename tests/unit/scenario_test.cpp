#include "sim/scenario.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(Scenario, LabelContainsEveryKnob) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 7;
  cfg.world = World::kEs;
  cfg.timer = TimerKind::kNonMonotone;
  cfg.crashes = 2;
  cfg.seed = 77;
  cfg.cold_start = true;
  cfg.garbage_init = true;
  const std::string label = cfg.label();
  for (const char* part : {"fig5-bounded", "n=7", "ev-sync", "non-monotone",
                           "crashes=2", "seed=77", "cold", "garbage"}) {
    EXPECT_NE(label.find(part), std::string::npos) << part;
  }
}

TEST(Scenario, WorldAndTimerNames) {
  EXPECT_EQ(world_name(World::kSync), "sync");
  EXPECT_EQ(world_name(World::kAwb), "awb");
  EXPECT_EQ(world_name(World::kAdversarialAwb), "awb-adversarial");
  EXPECT_EQ(world_name(World::kEs), "ev-sync");
  EXPECT_EQ(timer_name(TimerKind::kPerfect), "perfect");
  EXPECT_EQ(timer_name(TimerKind::kChaoticPrefix), "chaotic-prefix");
  EXPECT_EQ(timer_name(TimerKind::kNonMonotone), "non-monotone");
  EXPECT_EQ(timer_name(TimerKind::kSubDominating), "sub-dominating");
}

TEST(Scenario, RejectsBadTimely) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.timely = 3;
  EXPECT_THROW(make_scenario(cfg), InvariantViolation);
}

TEST(Scenario, CrashPlanSparesTimely) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.crashes = 3;
    cfg.timely = 2;
    cfg.seed = seed;
    auto d = make_scenario(cfg);
    EXPECT_TRUE(d->plan().is_correct(2)) << "seed " << seed;
    EXPECT_EQ(d->plan().num_faulty(), 3u);
  }
}

TEST(Scenario, FlapMarkerSetToGst) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.world = World::kSync;
  cfg.gst = 12345;
  auto d = make_scenario(cfg);
  d->run_until(20000);
  // Changes recorded before the marker do not count as flaps; this run
  // converges immediately (sync world), so flaps-after-marker must be zero
  // even though there was an initial output "change".
  EXPECT_EQ(d->metrics().convergence(d->plan()).changes_after_marker, 0u);
}

TEST(Scenario, ExtraRegistersReachTheLayout) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.extra_registers = [](LayoutBuilder& b) {
    b.add_array("MYAPP", 3, OwnerRule::kRowOwner, false);
  };
  auto d = make_scenario(cfg);
  GroupId g = 0;
  EXPECT_TRUE(d->memory().layout().find_group("MYAPP", g));
}

TEST(Scenario, DeterministicAcrossConstructions) {
  ScenarioConfig cfg;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.timer = TimerKind::kNonMonotone;
  cfg.crashes = 2;
  cfg.seed = 31;
  auto a = make_scenario(cfg);
  auto b = make_scenario(cfg);
  a->run_until(30000);
  b->run_until(30000);
  EXPECT_EQ(a->memory().instr().snapshot().total_writes,
            b->memory().instr().snapshot().total_writes);
  for (ProcessId i = 0; i < 5; ++i) {
    EXPECT_EQ(a->plan().crash_time(i), b->plan().crash_time(i));
    EXPECT_EQ(a->metrics().last_output(i), b->metrics().last_output(i));
  }
}

TEST(Scenario, SanFactoryPassesThrough) {
  // The memory-factory parameter reaches make_omega (smoke for the plumbing
  // every SAN run relies on).
  bool used = false;
  ScenarioConfig cfg;
  cfg.n = 2;
  auto d = make_scenario(cfg, [&used](Layout layout, std::uint32_t n) {
    used = true;
    return std::unique_ptr<MemoryBackend>(
        std::make_unique<SimMemory>(std::move(layout), n));
  });
  EXPECT_TRUE(used);
}

}  // namespace
}  // namespace omega
