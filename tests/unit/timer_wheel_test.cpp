// TimerWheel: batched due-wakeup delivery, slot hashing, the overflow rule
// for deadlines beyond one revolution, and cursor monotonicity.
#include "svc/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace omega::svc {
namespace {

std::vector<std::pair<GroupId, ProcessId>> drain(TimerWheel& w,
                                                 std::int64_t now) {
  std::vector<TimerWheel::Due> due;
  w.advance(now, due);
  std::vector<std::pair<GroupId, ProcessId>> out;
  out.reserve(due.size());
  for (const auto& d : due) out.emplace_back(d.gid, d.pid);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(TimerWheel, FiresAtDeadlineNotBefore) {
  TimerWheel w(16, 100);
  w.insert(250, 7, 1);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_TRUE(drain(w, 249).empty());
  const auto due = drain(w, 250);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], (std::pair<GroupId, ProcessId>{7, 1}));
  EXPECT_EQ(w.size(), 0u);
}

TEST(TimerWheel, BatchesEverythingDueInOneAdvance) {
  TimerWheel w(16, 100);
  for (GroupId gid = 0; gid < 10; ++gid) {
    w.insert(100 + static_cast<std::int64_t>(gid) * 90, gid, 0);
  }
  const auto due = drain(w, 1000);
  EXPECT_EQ(due.size(), 10u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(TimerWheel, EntriesWithinCurrentSlotFireOnLaterAdvance) {
  // now and the deadline land in the same slot: the first advance must not
  // fire it, the second (past the deadline) must — the cursor's own slot is
  // re-examined on every advance.
  TimerWheel w(8, 1000);
  w.insert(900, 1, 0);
  EXPECT_TRUE(drain(w, 500).empty()) << "same slot, not due yet";
  const auto due = drain(w, 950);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].first, 1u);
}

TEST(TimerWheel, OverflowBeyondOneRevolutionWaits) {
  TimerWheel w(8, 100);  // span = 800us
  w.insert(50, 1, 0);
  w.insert(50 + w.span_us(), 2, 0);  // same slot, one revolution later
  const auto first = drain(w, 60);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].first, 1u) << "far-future entry must not fire early";
  EXPECT_EQ(w.size(), 1u);
  EXPECT_TRUE(drain(w, 700).empty());
  const auto second = drain(w, 60 + w.span_us());
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].first, 2u);
}

TEST(TimerWheel, PastDeadlineFiresImmediately) {
  TimerWheel w(8, 100);
  (void)drain(w, 5000);  // move the cursor forward
  w.insert(100, 3, 2);   // long overdue
  const auto due = drain(w, 5001);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], (std::pair<GroupId, ProcessId>{3, 2}));
}

TEST(TimerWheel, LargeJumpSweepsWholeWheelOnce) {
  TimerWheel w(8, 100);
  for (GroupId gid = 0; gid < 8; ++gid) {
    w.insert(static_cast<std::int64_t>(gid) * 100, gid, 0);
  }
  // Jump several revolutions at once: everything is due.
  EXPECT_EQ(drain(w, 100 * 8 * 5).size(), 8u);
}

TEST(TimerWheel, TimeNeverRunsBackwards) {
  TimerWheel w(8, 100);
  (void)drain(w, 1000);
  w.insert(1100, 1, 0);
  EXPECT_TRUE(drain(w, 500).empty()) << "stale now must not fire anything";
  const auto due = drain(w, 1100);
  EXPECT_EQ(due.size(), 1u);
}

TEST(TimerWheel, RejectsBadConfig) {
  EXPECT_THROW(TimerWheel(1, 100), InvariantViolation);
  EXPECT_THROW(TimerWheel(8, 0), InvariantViolation);
}

}  // namespace
}  // namespace omega::svc
