#include "registers/instrumentation.h"

#include <gtest/gtest.h>

#include <vector>

namespace omega {
namespace {

TEST(Instrumentation, CountsPerProcess) {
  Instrumentation in(3, 10);
  in.on_read(0, Cell{1}, 5, 10);
  in.on_read(0, Cell{2}, 5, 11);
  in.on_write(1, Cell{3}, 7, 12);
  EXPECT_EQ(in.reads_by(0), 2u);
  EXPECT_EQ(in.reads_by(1), 0u);
  EXPECT_EQ(in.writes_by(1), 1u);
  EXPECT_EQ(in.writes_by(2), 0u);
}

TEST(Instrumentation, HighWaterIsMonotoneMax) {
  Instrumentation in(2, 4);
  in.on_write(0, Cell{0}, 10, 0);
  in.on_write(0, Cell{0}, 3, 1);
  in.on_write(0, Cell{0}, 12, 2);
  EXPECT_EQ(in.high_water(Cell{0}), 12u);
}

TEST(Instrumentation, LastWriteTimestamps) {
  Instrumentation in(2, 4);
  EXPECT_EQ(in.last_write_by(0), kNever);
  in.on_write(0, Cell{0}, 1, 55);
  EXPECT_EQ(in.last_write_by(0), 55);
}

TEST(Instrumentation, SnapshotTotals) {
  Instrumentation in(2, 4);
  in.on_read(0, Cell{0}, 0, 0);
  in.on_write(1, Cell{1}, 9, 1);
  in.on_write(1, Cell{2}, 4, 2);
  const auto s = in.snapshot();
  EXPECT_EQ(s.total_reads, 1u);
  EXPECT_EQ(s.total_writes, 2u);
  EXPECT_EQ(s.writes_by[1], 2u);
  EXPECT_EQ(s.writes_to[1], 1u);
  EXPECT_EQ(s.high_water[1], 9u);
  EXPECT_EQ(s.last_write_by[0], kNever);
}

class Recorder final : public AccessObserver {
 public:
  void on_access(const AccessEvent& ev) override { events.push_back(ev); }
  std::vector<AccessEvent> events;
};

TEST(Instrumentation, ObserverSeesEveryAccess) {
  Instrumentation in(2, 4);
  Recorder rec;
  in.set_observer(&rec);
  in.on_read(0, Cell{1}, 11, 100);
  in.on_write(1, Cell{2}, 22, 200);
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_FALSE(rec.events[0].is_write);
  EXPECT_EQ(rec.events[0].value, 11u);
  EXPECT_EQ(rec.events[0].when, 100);
  EXPECT_TRUE(rec.events[1].is_write);
  EXPECT_EQ(rec.events[1].pid, 1u);
  in.set_observer(nullptr);
  in.on_read(0, Cell{1}, 0, 300);
  EXPECT_EQ(rec.events.size(), 2u);  // detached
}

TEST(Instrumentation, RejectsBadIds) {
  Instrumentation in(2, 4);
  EXPECT_THROW(in.on_read(5, Cell{0}, 0, 0), InvariantViolation);
  EXPECT_THROW(in.on_write(0, Cell{9}, 0, 0), InvariantViolation);
  EXPECT_THROW(in.reads_by(17), InvariantViolation);
}

}  // namespace
}  // namespace omega
