// v1.3 METRICS codec (net/frame.h): request/response round-trips with
// sparse histogram buckets and negative gauges, role selection by body
// length, pagination arithmetic, and rejection of truncated records.
#include "net/frame.h"

#include <gtest/gtest.h>

#include "common/check.h"

#include <string>
#include <vector>

namespace omega::net {
namespace {

std::vector<Frame> decode_all(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  while (dec.next(payload, len)) {
    Frame f;
    EXPECT_EQ(decode_payload(payload, len, f), DecodeResult::kOk);
    frames.push_back(f);
  }
  return frames;
}

obs::MetricSample counter_sample(std::string name, std::int64_t value) {
  obs::MetricSample m;
  m.name = std::move(name);
  m.kind = obs::MetricSample::Kind::kCounter;
  m.value = value;
  return m;
}

TEST(MetricsFrame, RequestRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_metrics_request(buf, /*req_id=*/7, MetricsReqBody{123});
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kMetrics);
  EXPECT_EQ(frames[0].header.req_id, 7u);
  ASSERT_TRUE(frames[0].has_body);
  EXPECT_FALSE(frames[0].has_metrics_resp);  // 4-byte body = request role
  EXPECT_EQ(frames[0].metrics_req.start, 123u);
}

TEST(MetricsFrame, ResponseRoundTripAllKinds) {
  MetricsRespBody body;
  body.total = 5;
  body.start = 2;
  body.node = 2;  // v1.5 endpoint-identity trailer
  body.metrics.push_back(counter_sample("net.frames.append", 80000));
  obs::MetricSample gauge;
  gauge.name = "test.negative_gauge";
  gauge.kind = obs::MetricSample::Kind::kGauge;
  gauge.value = -42;  // i64 survives the u64 wire field
  body.metrics.push_back(gauge);
  obs::MetricSample hist;
  hist.name = "smr.seal_to_decide_ns";
  hist.kind = obs::MetricSample::Kind::kHistogram;
  hist.value = 11;
  hist.sum = 987654;
  hist.buckets = {{10, 4}, {11, 6}, {63, 1}};  // sparse, gaps allowed
  body.metrics.push_back(hist);

  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, /*req_id=*/9, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  const Frame& f = frames[0];
  EXPECT_EQ(f.header.type, MsgType::kMetrics);
  EXPECT_EQ(f.header.status, Status::kOk);
  ASSERT_TRUE(f.has_metrics_resp);
  EXPECT_EQ(f.metrics_resp.total, 5u);
  EXPECT_EQ(f.metrics_resp.start, 2u);
  EXPECT_EQ(f.metrics_resp.node, 2u);
  ASSERT_EQ(f.metrics_resp.metrics.size(), 3u);
  EXPECT_EQ(f.metrics_resp.metrics[0], body.metrics[0]);
  EXPECT_EQ(f.metrics_resp.metrics[1], body.metrics[1]);
  EXPECT_EQ(f.metrics_resp.metrics[2], body.metrics[2]);
}

TEST(MetricsFrame, EmptyPageRoundTrip) {
  // A scrape of an empty registry answers total=0 with no records; the
  // 12-byte body must still decode as a response, not a request.
  MetricsRespBody body;
  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, 1, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].has_metrics_resp);
  EXPECT_EQ(frames[0].metrics_resp.total, 0u);
  EXPECT_TRUE(frames[0].metrics_resp.metrics.empty());
  EXPECT_EQ(frames[0].metrics_resp.node, kNoNodeId);  // default trailer
}

TEST(MetricsFrame, V14ResponseWithoutNodeTrailerStillDecodes) {
  // A v1.4 peer's response ends right after the records. Strip the
  // 4-byte node trailer and re-stamp the length prefix: the decoder
  // must accept the shorter body and default the node to kNoNodeId.
  MetricsRespBody body;
  body.total = 1;
  body.metrics.push_back(counter_sample("old.peer", 7));
  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, 6, body);
  const std::size_t payload_len = buf.size() - 4 - 4;
  Frame f;
  ASSERT_EQ(decode_payload(buf.data() + 4, payload_len, f),
            DecodeResult::kOk);
  ASSERT_TRUE(f.has_metrics_resp);
  ASSERT_EQ(f.metrics_resp.metrics.size(), 1u);
  EXPECT_EQ(f.metrics_resp.metrics[0], body.metrics[0]);
  EXPECT_EQ(f.metrics_resp.node, kNoNodeId);
}

TEST(MetricsFrame, RecordWireSizeMatchesEncoding) {
  obs::MetricSample hist;
  hist.name = "x.y";
  hist.kind = obs::MetricSample::Kind::kHistogram;
  hist.buckets = {{1, 2}, {3, 4}};
  MetricsRespBody body;
  body.total = 1;
  body.metrics.push_back(hist);
  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, 1, body);
  // frame = u32 len | 12-byte header | u32 total | u32 start | u32 count
  //         | the one record | u32 node (v1.5 trailer)
  EXPECT_EQ(buf.size(),
            4 + kHeaderBytes + 12 + metrics_record_wire_size(hist) + 4);
}

TEST(MetricsFrame, TruncatedRecordRejected) {
  MetricsRespBody body;
  body.total = 1;
  body.metrics.push_back(counter_sample("truncate.me", 5));
  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, 3, body);
  // Clip the payload mid-record, re-stamp the length prefix, and expect
  // the decoder to call the body bad rather than read past the end.
  const std::size_t payload_len = buf.size() - 4 - 6;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, payload_len, f),
            DecodeResult::kBadBody);
}

TEST(MetricsFrame, CountBeyondPayloadRejected) {
  MetricsRespBody body;
  body.total = 2;
  body.metrics.push_back(counter_sample("only.one", 1));
  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, 4, body);
  // Corrupt the count field (third u32 after the header) to claim a
  // second record that is not there.
  const std::size_t count_at = 4 + kHeaderBytes + 8;
  buf[count_at] = 2;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(MetricsFrame, CountBombRejectedBeforeReserve) {
  // A minimal 12-byte response body claiming count=0xFFFFFFFF must be
  // rejected by arithmetic, not by attempting a ~80 GB reserve() whose
  // bad_alloc would escape the server IO loop.
  MetricsRespBody body;
  std::vector<std::uint8_t> buf;
  encode_metrics_response(buf, Status::kOk, 4, body);
  const std::size_t count_at = 4 + kHeaderBytes + 8;
  buf[count_at] = 0xFF;
  buf[count_at + 1] = 0xFF;
  buf[count_at + 2] = 0xFF;
  buf[count_at + 3] = 0xFF;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(MetricsFrame, LongNameRejectedAtEncode) {
  // Silent truncation would desync the scraped name from the registry
  // name (and collide distinct long names); the encoder refuses instead.
  MetricsRespBody body;
  body.total = 1;
  body.metrics.push_back(counter_sample(std::string(300, 'n'), 1));
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(encode_metrics_response(buf, Status::kOk, 5, body),
               InvariantViolation);
}

}  // namespace
}  // namespace omega::net
