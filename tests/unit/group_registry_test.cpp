// GroupRegistry: hash-shard assignment, add/remove/find lifecycle, shard
// versioning for worker refreshes, and the epoch-validated cache entry.
#include "svc/group_registry.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace omega::svc {
namespace {

TEST(ShardAssignment, DeterministicAndInRange) {
  GroupRegistry reg(8, 100);
  for (GroupId gid = 0; gid < 500; ++gid) {
    const std::uint32_t s = reg.shard_of(gid);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, reg.shard_of(gid)) << "shard must be stable for gid " << gid;
  }
}

TEST(ShardAssignment, SequentialIdsSpreadAcrossShards) {
  // Application group ids are typically sequential; the mixer must still
  // spread them: with 512 ids on 8 shards every shard should get a share.
  GroupRegistry reg(8, 100);
  std::vector<std::uint32_t> per_shard(8, 0);
  for (GroupId gid = 0; gid < 512; ++gid) ++per_shard[reg.shard_of(gid)];
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_GT(per_shard[s], 20u) << "shard " << s << " starved";
    EXPECT_LT(per_shard[s], 150u) << "shard " << s << " overloaded";
  }
}

TEST(ShardAssignment, IndependentOfInsertionState) {
  GroupRegistry reg(4, 100);
  const std::uint32_t before = reg.shard_of(42);
  reg.add(7, GroupSpec{});
  reg.add(42, GroupSpec{});
  EXPECT_EQ(reg.shard_of(42), before);
}

TEST(GroupRegistry, AddFindRemoveLifecycle) {
  GroupRegistry reg(4, 100);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.find(1), nullptr);

  auto g = reg.add(1, GroupSpec{AlgoKind::kWriteEfficient, 3});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->id, 1u);
  EXPECT_EQ(g->spec.n, 3u);
  EXPECT_EQ(g->execs.size(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.find(1), g);

  EXPECT_FALSE(g->retired.load());
  EXPECT_TRUE(reg.remove(1));
  EXPECT_TRUE(g->retired.load()) << "remove must mark the group retired";
  EXPECT_EQ(reg.find(1), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.remove(1)) << "second remove reports unknown id";
}

TEST(GroupRegistry, DuplicateIdRejected) {
  GroupRegistry reg(2, 100);
  reg.add(5, GroupSpec{});
  EXPECT_THROW(reg.add(5, GroupSpec{}), InvariantViolation);
  // After removal the id is reusable.
  EXPECT_TRUE(reg.remove(5));
  EXPECT_NO_THROW(reg.add(5, GroupSpec{}));
}

TEST(GroupRegistry, ShardVersionBumpsOnMembershipChange) {
  GroupRegistry reg(2, 100);
  // Find a gid for each shard.
  GroupId on0 = 0, on1 = 0;
  for (GroupId gid = 0;; ++gid) {
    if (reg.shard_of(gid) == 0) {
      on0 = gid;
      break;
    }
  }
  for (GroupId gid = 0;; ++gid) {
    if (reg.shard_of(gid) == 1) {
      on1 = gid;
      break;
    }
  }
  const std::uint64_t v0 = reg.shard_version(0);
  const std::uint64_t v1 = reg.shard_version(1);
  reg.add(on0, GroupSpec{});
  EXPECT_GT(reg.shard_version(0), v0);
  EXPECT_EQ(reg.shard_version(1), v1) << "other shards must not churn";
  reg.add(on1, GroupSpec{});
  EXPECT_GT(reg.shard_version(1), v1);
  const std::uint64_t v0b = reg.shard_version(0);
  reg.remove(on0);
  EXPECT_GT(reg.shard_version(0), v0b);
}

TEST(GroupRegistry, SnapshotReturnsShardGroupsOnly) {
  GroupRegistry reg(2, 100);
  std::set<GroupId> expect0, expect1;
  for (GroupId gid = 0; gid < 16; ++gid) {
    reg.add(gid, GroupSpec{});
    (reg.shard_of(gid) == 0 ? expect0 : expect1).insert(gid);
  }
  std::vector<std::shared_ptr<Group>> snap;
  reg.snapshot_shard(0, snap);
  std::set<GroupId> got0;
  for (const auto& g : snap) got0.insert(g->id);
  EXPECT_EQ(got0, expect0);
  reg.snapshot_shard(1, snap);
  std::set<GroupId> got1;
  for (const auto& g : snap) got1.insert(g->id);
  EXPECT_EQ(got1, expect1);
}

TEST(GroupRegistry, RejectsBadConfig) {
  EXPECT_THROW(GroupRegistry(0, 100), InvariantViolation);
  EXPECT_THROW(GroupRegistry(2, 0), InvariantViolation);
  GroupRegistry reg(2, 100);
  EXPECT_THROW(reg.add(1, GroupSpec{AlgoKind::kWriteEfficient, 0}),
               InvariantViolation);
  EXPECT_THROW(reg.shard_version(2), InvariantViolation);
}

TEST(LeaderCache, EpochBumpsOnlyOnChange) {
  LeaderCacheEntry entry;
  EXPECT_EQ(entry.load(), (LeaderView{kNoProcess, 0}));

  EXPECT_TRUE(entry.publish(2));
  EXPECT_EQ(entry.load(), (LeaderView{2, 1}));

  // Republishing the same leader is free: no epoch churn, cached fencing
  // tokens stay valid.
  EXPECT_FALSE(entry.publish(2));
  EXPECT_EQ(entry.load(), (LeaderView{2, 1}));

  // Losing agreement is itself a view change.
  EXPECT_TRUE(entry.publish(kNoProcess));
  EXPECT_EQ(entry.load(), (LeaderView{kNoProcess, 2}));

  EXPECT_TRUE(entry.publish(0));
  EXPECT_EQ(entry.load(), (LeaderView{0, 3}));
}

TEST(GroupAgreed, RequiresUnanimityOfLiveProcesses) {
  GroupRegistry reg(1, 100);
  auto g = reg.add(9, GroupSpec{AlgoKind::kWriteEfficient, 3});
  // No process has published a view yet.
  EXPECT_EQ(g->agreed(), kNoProcess);
  // Drive each executor through one leader query by hand: with warm-start
  // candidates and zero suspicions everyone elects p0.
  for (auto& ex : g->execs) {
    // heartbeat's first op is the LeaderQuery of the `while leader()=i` test.
    while (ex->last_leader() == kNoProcess) {
      ASSERT_TRUE(ex->step_runnable(0));
    }
  }
  EXPECT_EQ(g->agreed(), 0u);
  // A crashed leader invalidates the agreement even if views still name it.
  g->execs[0]->crash();
  EXPECT_EQ(g->agreed(), kNoProcess);
}

}  // namespace
}  // namespace omega::svc
