// v1.6 READ wire coverage: request/response round-trips for every status
// the read path answers with, the role-based length rule at each
// boundary (< 24 malformed, 24..43 request, >= 44 response), trailing
// bytes as forward compatibility, hostile length prefixes, and READ
// frames interleaved with v1.1 traffic on one stream.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace omega::net {
namespace {

Frame decode_one(const std::vector<std::uint8_t>& buf,
                 DecodeResult expect = DecodeResult::kOk) {
  FrameDecoder dec;
  dec.feed(buf.data(), buf.size());
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  EXPECT_TRUE(dec.next(payload, len));
  Frame f;
  EXPECT_EQ(decode_payload(payload, len, f), expect);
  return f;
}

TEST(ReadFrame, RequestRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_read_request(buf, /*req_id=*/77,
                      ReadReqBody{/*gid=*/9, /*key=*/0xBEEF,
                                  /*min_index=*/123});
  // Canonical request length: the server's fast path keys on it.
  EXPECT_EQ(buf.size(), 4 + kHeaderBytes + 24);
  const Frame f = decode_one(buf);
  EXPECT_EQ(f.header.type, MsgType::kRead);
  EXPECT_EQ(f.header.status, Status::kOk);
  EXPECT_EQ(f.header.req_id, 77u);
  ASSERT_TRUE(f.has_read_req);
  EXPECT_FALSE(f.has_read_resp);
  EXPECT_EQ(f.read_req.gid, 9u);
  EXPECT_EQ(f.read_req.key, 0xBEEFu);
  EXPECT_EQ(f.read_req.min_index, 123u);
}

TEST(ReadFrame, ResponseRoundTripsEveryStatus) {
  // Every status the read path answers with carries the full 44-byte
  // body, so one length rule covers success, refusal, and errors alike.
  const Status statuses[] = {Status::kLeaseRead,    Status::kIndexRead,
                             Status::kOk,           Status::kNotLeader,
                             Status::kUnknownGroup, Status::kOverloaded};
  for (const Status s : statuses) {
    std::vector<std::uint8_t> buf;
    ReadRespBody body;
    body.gid = 4;
    body.key = 0x1234;
    body.index = 57;
    body.commit_index = 900;
    body.leader = ProcessId{2};
    body.epoch = 11;
    encode_read_response(buf, s, /*req_id=*/5, body);
    EXPECT_EQ(buf.size(), 4 + kHeaderBytes + 44);
    const Frame f = decode_one(buf);
    EXPECT_EQ(f.header.status, s);
    ASSERT_TRUE(f.has_read_resp) << static_cast<int>(s);
    EXPECT_EQ(f.read_resp.gid, 4u);
    EXPECT_EQ(f.read_resp.key, 0x1234u);
    EXPECT_EQ(f.read_resp.index, 57u);
    EXPECT_EQ(f.read_resp.commit_index, 900u);
    EXPECT_EQ(f.read_resp.leader, 2u);
    EXPECT_EQ(f.read_resp.epoch, 11u);
  }
}

TEST(ReadFrame, NeverAppliedKeyRidesAsIndexZero) {
  std::vector<std::uint8_t> buf;
  ReadRespBody body;
  body.gid = 1;
  body.key = 42;
  body.index = 0;  // the "never applied" sentinel (positions are +1)
  body.commit_index = 10;
  encode_read_response(buf, Status::kLeaseRead, 1, body);
  const Frame f = decode_one(buf);
  ASSERT_TRUE(f.has_read_resp);
  EXPECT_EQ(f.read_resp.index, 0u);
}

TEST(ReadFrame, TruncationBoundaries) {
  // Build a full response, then replay every truncated prefix of its
  // body through the decoder: < 24 is malformed, 24..43 decodes as a
  // REQUEST (the role rule — never as a half-read response), >= 44 as a
  // response.
  std::vector<std::uint8_t> full;
  ReadRespBody body;
  body.gid = 7;
  body.key = 0xABCD;
  body.index = 3;
  body.commit_index = 9;
  body.leader = ProcessId{1};
  body.epoch = 2;
  encode_read_response(full, Status::kLeaseRead, 8, body);
  const std::uint8_t* payload = full.data() + 4;  // skip the length prefix
  for (std::size_t body_len = 0; body_len <= 44; ++body_len) {
    Frame f;
    const DecodeResult r =
        decode_payload(payload, kHeaderBytes + body_len, f);
    if (body_len < 24) {
      EXPECT_EQ(r, DecodeResult::kBadBody) << body_len;
    } else if (body_len < 44) {
      EXPECT_EQ(r, DecodeResult::kOk) << body_len;
      EXPECT_TRUE(f.has_read_req) << body_len;
      EXPECT_FALSE(f.has_read_resp) << body_len;
      EXPECT_EQ(f.read_req.gid, 7u);
      EXPECT_EQ(f.read_req.key, 0xABCDu);
    } else {
      EXPECT_EQ(r, DecodeResult::kOk);
      EXPECT_TRUE(f.has_read_resp);
      EXPECT_EQ(f.read_resp.epoch, 2u);
    }
  }
}

TEST(ReadFrame, TrailingBytesAreForwardCompatible) {
  // A future revision may append fields to either role; v1.6 readers
  // skip them. Response + junk still decodes as the same response.
  std::vector<std::uint8_t> buf;
  ReadRespBody body;
  body.gid = 3;
  body.key = 5;
  body.index = 1;
  encode_read_response(buf, Status::kIndexRead, 2, body);
  for (int i = 0; i < 6; ++i) buf.push_back(0xEE);
  // Patch the length prefix to cover the junk.
  const std::uint32_t n = static_cast<std::uint32_t>(buf.size() - 4);
  buf[0] = static_cast<std::uint8_t>(n);
  buf[1] = static_cast<std::uint8_t>(n >> 8);
  buf[2] = static_cast<std::uint8_t>(n >> 16);
  buf[3] = static_cast<std::uint8_t>(n >> 24);
  const Frame f = decode_one(buf);
  ASSERT_TRUE(f.has_read_resp);
  EXPECT_EQ(f.read_resp.gid, 3u);
  EXPECT_EQ(f.read_resp.key, 5u);
}

TEST(ReadFrame, OversizedLengthPrefixMarksStreamCorrupt) {
  // A hostile peer announcing a giant READ cannot make the decoder
  // allocate: the stream is condemned at the length prefix.
  std::vector<std::uint8_t> buf;
  const std::uint32_t n = kMaxPayloadBytes + 1;
  buf.push_back(static_cast<std::uint8_t>(n));
  buf.push_back(static_cast<std::uint8_t>(n >> 8));
  buf.push_back(static_cast<std::uint8_t>(n >> 16));
  buf.push_back(static_cast<std::uint8_t>(n >> 24));
  buf.push_back(kMagic);
  FrameDecoder dec;
  dec.feed(buf.data(), buf.size());
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  EXPECT_FALSE(dec.next(payload, len));
  EXPECT_TRUE(dec.corrupt());
}

TEST(ReadFrame, InterleavesWithV11TrafficOnOneStream) {
  // One TCP stream carrying APPEND, READ, and READ_LOG back to back,
  // fed a byte at a time: each frame reassembles and decodes with its
  // own role intact.
  std::vector<std::uint8_t> stream;
  AppendReqBody app;
  app.gid = 1;
  app.client = 10;
  app.seq = 1;
  app.command = 77;
  encode_append_request(stream, 100, app);
  encode_read_request(stream, 101, ReadReqBody{1, 77, 0});
  ReadLogReqBody rl;
  rl.gid = 1;
  rl.from = 0;
  rl.max = 16;
  encode_readlog_request(stream, 102, rl);
  ReadRespBody rr;
  rr.gid = 1;
  rr.key = 77;
  rr.index = 1;
  rr.commit_index = 1;
  encode_read_response(stream, Status::kLeaseRead, 101, rr);

  FrameDecoder dec;
  std::vector<Frame> frames;
  for (const std::uint8_t b : stream) {
    dec.feed(&b, 1);
    const std::uint8_t* payload = nullptr;
    std::size_t len = 0;
    while (dec.next(payload, len)) {
      Frame f;
      ASSERT_EQ(decode_payload(payload, len, f), DecodeResult::kOk);
      frames.push_back(f);
    }
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].header.type, MsgType::kAppend);
  EXPECT_TRUE(frames[0].has_append_req);
  EXPECT_EQ(frames[1].header.type, MsgType::kRead);
  ASSERT_TRUE(frames[1].has_read_req);
  EXPECT_EQ(frames[1].read_req.key, 77u);
  EXPECT_EQ(frames[2].header.type, MsgType::kReadLog);
  EXPECT_TRUE(frames[2].has_readlog_req);
  EXPECT_EQ(frames[3].header.type, MsgType::kRead);
  ASSERT_TRUE(frames[3].has_read_resp);
  EXPECT_EQ(frames[3].read_resp.index, 1u);
  EXPECT_EQ(frames[3].header.status, Status::kLeaseRead);
}

}  // namespace
}  // namespace omega::net
