// v1.5 telemetry codec (net/frame.h): HEALTH round-trips with firing
// rules and role selection by body length, METRICS_WATCH period
// round-trip, METRICS_EVENT page round-trip with req_id 0, truncation
// rejection, and count-bomb hardening on both wire-controlled counts.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace omega::net {
namespace {

std::vector<Frame> decode_all(const std::vector<std::uint8_t>& bytes) {
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  std::vector<Frame> frames;
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  while (dec.next(payload, len)) {
    Frame f;
    EXPECT_EQ(decode_payload(payload, len, f), DecodeResult::kOk);
    frames.push_back(f);
  }
  return frames;
}

TEST(HealthFrame, EmptyBodyIsTheRequestRole) {
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kHealth, /*req_id=*/3, std::nullopt);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kHealth);
  EXPECT_EQ(frames[0].header.req_id, 3u);
  EXPECT_FALSE(frames[0].has_health_resp);
}

TEST(HealthFrame, ResponseRoundTripWithFiringRules) {
  HealthRespBody body;
  body.overall = 1;  // degraded
  body.ticks = 4242;
  body.rules_total = 7;
  body.firing.push_back(
      HealthRuleWire{1, "mirror-push-lag", "p99 612ms over 5s"});
  body.firing.push_back(HealthRuleWire{2, "watchdog", "fired 1x in 10s"});
  std::vector<std::uint8_t> buf;
  encode_health_response(buf, Status::kOk, /*req_id=*/9, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  const Frame& f = frames[0];
  EXPECT_EQ(f.header.type, MsgType::kHealth);
  EXPECT_EQ(f.header.status, Status::kOk);
  ASSERT_TRUE(f.has_health_resp);
  EXPECT_EQ(f.health_resp.overall, 1);
  EXPECT_EQ(f.health_resp.ticks, 4242u);
  EXPECT_EQ(f.health_resp.rules_total, 7);
  ASSERT_EQ(f.health_resp.firing.size(), 2u);
  EXPECT_EQ(f.health_resp.firing[0].status, 1);
  EXPECT_EQ(f.health_resp.firing[0].name, "mirror-push-lag");
  EXPECT_EQ(f.health_resp.firing[0].reason, "p99 612ms over 5s");
  EXPECT_EQ(f.health_resp.firing[1].status, 2);
  EXPECT_EQ(f.health_resp.firing[1].name, "watchdog");
}

TEST(HealthFrame, AllOkResponseCarriesNoRules) {
  HealthRespBody body;
  body.overall = 0;
  body.ticks = 12;
  body.rules_total = 7;
  std::vector<std::uint8_t> buf;
  encode_health_response(buf, Status::kOk, 1, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].has_health_resp);
  EXPECT_TRUE(frames[0].health_resp.firing.empty());
  EXPECT_EQ(frames[0].health_resp.rules_total, 7);
}

TEST(HealthFrame, TruncatedRuleRejected) {
  HealthRespBody body;
  body.overall = 1;
  body.firing.push_back(HealthRuleWire{1, "commit-stall", "no commits"});
  std::vector<std::uint8_t> buf;
  encode_health_response(buf, Status::kOk, 2, body);
  // Clip mid-reason: the decoder must flag the body, not read past it.
  const std::size_t payload_len = buf.size() - 4 - 5;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, payload_len, f),
            DecodeResult::kBadBody);
}

TEST(HealthFrame, FiringCountBombRejected) {
  // An 11-byte all-ok response whose nfiring byte claims 255 rules must
  // be rejected by arithmetic before any reserve().
  HealthRespBody body;
  std::vector<std::uint8_t> buf;
  encode_health_response(buf, Status::kOk, 4, body);
  buf[4 + kHeaderBytes + 10] = 0xFF;  // nfiring
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(MetricsWatchFrame, RequestAndResponseRoundTrip) {
  std::vector<std::uint8_t> req;
  encode_request(req, MsgType::kMetricsWatch, /*req_id=*/5, std::nullopt);
  const auto reqf = decode_all(req);
  ASSERT_EQ(reqf.size(), 1u);
  EXPECT_EQ(reqf[0].header.type, MsgType::kMetricsWatch);
  EXPECT_FALSE(reqf[0].has_body);  // empty body = request role

  std::vector<std::uint8_t> resp;
  encode_metrics_watch_response(resp, Status::kOk, /*req_id=*/5,
                                /*period_ms=*/250);
  const auto respf = decode_all(resp);
  ASSERT_EQ(respf.size(), 1u);
  EXPECT_EQ(respf[0].header.req_id, 5u);
  ASSERT_TRUE(respf[0].has_body);
  EXPECT_EQ(respf[0].metrics_watch.period_ms, 250u);
}

obs::MetricSample event_sample() {
  obs::MetricSample m;
  m.name = "smr.queue_pending";
  m.kind = obs::MetricSample::Kind::kGauge;
  m.value = 17;
  return m;
}

TEST(MetricsEventFrame, PageRoundTrip) {
  MetricsEventBody body;
  body.tick = 77;
  body.health = 1;
  body.total = 40;
  body.start = 20;
  body.metrics.push_back(event_sample());
  std::vector<std::uint8_t> buf;
  encode_metrics_event(buf, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  const Frame& f = frames[0];
  EXPECT_EQ(f.header.type, MsgType::kMetricsEvent);
  EXPECT_EQ(f.header.req_id, 0u);  // pushes answer nothing
  ASSERT_TRUE(f.has_metrics_event);
  EXPECT_EQ(f.metrics_event.tick, 77u);
  EXPECT_EQ(f.metrics_event.health, 1);
  EXPECT_EQ(f.metrics_event.total, 40u);
  EXPECT_EQ(f.metrics_event.start, 20u);
  ASSERT_EQ(f.metrics_event.metrics.size(), 1u);
  EXPECT_EQ(f.metrics_event.metrics[0], body.metrics[0]);
}

TEST(MetricsEventFrame, EmptyHeartbeatPageRoundTrips) {
  // A tick with zero metrics still ships one page: subscribers key their
  // liveness on the tick cadence, not on the record count.
  MetricsEventBody body;
  body.tick = 9;
  std::vector<std::uint8_t> buf;
  encode_metrics_event(buf, body);
  const auto frames = decode_all(buf);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(frames[0].has_metrics_event);
  EXPECT_EQ(frames[0].metrics_event.tick, 9u);
  EXPECT_TRUE(frames[0].metrics_event.metrics.empty());
}

TEST(MetricsEventFrame, TruncatedRecordRejected) {
  MetricsEventBody body;
  body.total = 1;
  body.metrics.push_back(event_sample());
  std::vector<std::uint8_t> buf;
  encode_metrics_event(buf, body);
  const std::size_t payload_len = buf.size() - 4 - 6;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, payload_len, f),
            DecodeResult::kBadBody);
}

TEST(MetricsEventFrame, CountBombRejectedBeforeReserve) {
  MetricsEventBody body;
  std::vector<std::uint8_t> buf;
  encode_metrics_event(buf, body);
  // Corrupt the count field (after u64 tick | u8 health | u32 total |
  // u32 start) to claim ~4 billion records in a 21-byte body.
  const std::size_t count_at = 4 + kHeaderBytes + 8 + 1 + 4 + 4;
  buf[count_at] = 0xFF;
  buf[count_at + 1] = 0xFF;
  buf[count_at + 2] = 0xFF;
  buf[count_at + 3] = 0xFF;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(MetricsEventFrame, ShortBodyRejected) {
  MetricsEventBody body;
  std::vector<std::uint8_t> buf;
  encode_metrics_event(buf, body);
  // A push shorter than its fixed prefix has no valid interpretation
  // (there is no request role for pushes).
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, kHeaderBytes + 10, f),
            DecodeResult::kBadBody);
}

}  // namespace
}  // namespace omega::net
