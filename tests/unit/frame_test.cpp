// Wire codec (net/frame.h): round-trips for every message type, stream
// reassembly under arbitrary fragmentation, and rejection of malformed or
// oversized input.
#include "net/frame.h"

#include <gtest/gtest.h>

namespace omega::net {
namespace {

/// Feeds `bytes` to a decoder in `chunk`-sized pieces and decodes every
/// completed payload.
std::vector<Frame> decode_stream(const std::vector<std::uint8_t>& bytes,
                                 std::size_t chunk) {
  FrameDecoder dec;
  std::vector<Frame> frames;
  for (std::size_t at = 0; at < bytes.size(); at += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - at);
    dec.feed(bytes.data() + at, n);
    const std::uint8_t* payload = nullptr;
    std::size_t len = 0;
    while (dec.next(payload, len)) {
      Frame f;
      EXPECT_EQ(decode_payload(payload, len, f), DecodeResult::kOk);
      frames.push_back(f);
    }
  }
  return frames;
}

TEST(Frame, LeaderRequestRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kLeader, /*req_id=*/42, WireGroupId{7});
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.type, MsgType::kLeader);
  EXPECT_EQ(frames[0].header.status, Status::kOk);
  EXPECT_EQ(frames[0].header.req_id, 42u);
  ASSERT_TRUE(frames[0].has_body);
  EXPECT_EQ(frames[0].view.gid, 7u);
  EXPECT_EQ(frames[0].view.leader, kNoProcess);  // requests carry no view
}

TEST(Frame, ViewResponseRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_view_frame(buf, MsgType::kLeader, Status::kOk, 9,
                    ViewBody{0xdeadbeefull, ProcessId{2}, 0x1234567890ull});
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].view.gid, 0xdeadbeefull);
  EXPECT_EQ(frames[0].view.leader, 2u);
  EXPECT_EQ(frames[0].view.epoch, 0x1234567890ull);
}

TEST(Frame, NoLeaderSentinelSurvivesTheWire) {
  std::vector<std::uint8_t> buf;
  encode_view_frame(buf, MsgType::kEvent, Status::kOk, 0,
                    ViewBody{3, kNoProcess, 17});
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].view.leader, kNoProcess);
  EXPECT_EQ(frames[0].view.epoch, 17u);
}

TEST(Frame, PingAndStatsRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kPing, 1, std::nullopt);
  StatsBody stats;
  stats.connections = 3;
  stats.queries = 1000;
  stats.watches = 5;
  stats.events = 12;
  stats.groups = 64;
  stats.io_threads = 2;
  encode_stats_response(buf, 2, stats);
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.type, MsgType::kPing);
  EXPECT_FALSE(frames[0].has_body);
  EXPECT_EQ(frames[1].header.type, MsgType::kStats);
  ASSERT_TRUE(frames[1].has_body);
  EXPECT_EQ(frames[1].stats.queries, 1000u);
  EXPECT_EQ(frames[1].stats.groups, 64u);
  EXPECT_EQ(frames[1].stats.io_threads, 2u);
}

TEST(Frame, ByteAtATimeReassembly) {
  // TCP may deliver any fragmentation; the decoder must reassemble frames
  // fed one byte at a time, across frame boundaries.
  std::vector<std::uint8_t> buf;
  for (std::uint64_t i = 0; i < 5; ++i) {
    encode_request(buf, MsgType::kLeader, i, WireGroupId{i * 10});
  }
  const auto frames = decode_stream(buf, 1);
  ASSERT_EQ(frames.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(frames[i].header.req_id, i);
    EXPECT_EQ(frames[i].view.gid, i * 10);
  }
}

TEST(Frame, DecoderCompactionKeepsLongStreamsBounded) {
  // A long-lived connection must not grow the buffer without bound: after
  // many consumed frames the decoder compacts and keeps decoding right.
  std::vector<std::uint8_t> one;
  encode_request(one, MsgType::kLeader, 7, WireGroupId{7});
  FrameDecoder dec;
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  for (int i = 0; i < 10000; ++i) {
    dec.feed(one.data(), one.size());
    ASSERT_TRUE(dec.next(payload, len));
    Frame f;
    ASSERT_EQ(decode_payload(payload, len, f), DecodeResult::kOk);
    ASSERT_EQ(f.view.gid, 7u);
    EXPECT_FALSE(dec.next(payload, len));
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(Frame, RejectsBadMagicAndVersion) {
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kPing, 1, std::nullopt);
  Frame f;
  std::vector<std::uint8_t> payload(buf.begin() + 4, buf.end());
  payload[0] ^= 0xff;  // magic
  EXPECT_EQ(decode_payload(payload.data(), payload.size(), f),
            DecodeResult::kBadMagic);
  payload[0] ^= 0xff;
  payload[1] = kVersion + 1;  // future version: reject loudly
  EXPECT_EQ(decode_payload(payload.data(), payload.size(), f),
            DecodeResult::kBadMagic);
}

TEST(Frame, RejectsTruncatedHeaderAndBody) {
  Frame f;
  const std::uint8_t short_payload[3] = {kMagic, kVersion, 1};
  EXPECT_EQ(decode_payload(short_payload, sizeof short_payload, f),
            DecodeResult::kBadLength);

  // LEADER with a 4-byte body (gid needs 8).
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kLeader, 1, WireGroupId{1});
  std::vector<std::uint8_t> payload(buf.begin() + 4, buf.end() - 4);
  EXPECT_EQ(decode_payload(payload.data(), payload.size(), f),
            DecodeResult::kBadBody);
}

TEST(Frame, EventWithoutViewIsMalformed) {
  // EVENT frames must carry the full view; a gid-only event is a bug.
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kEvent, 0, WireGroupId{5});
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(Frame, UnknownTypeDecodesHeaderOnly) {
  std::vector<std::uint8_t> buf;
  encode_request(buf, static_cast<MsgType>(200), 77, std::nullopt);
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kOk);
  EXPECT_EQ(f.header.req_id, 77u);
  EXPECT_FALSE(f.has_body);
}

TEST(Frame, OversizedLengthPrefixMarksStreamCorrupt) {
  FrameDecoder dec;
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  const std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(huge), static_cast<std::uint8_t>(huge >> 8),
      static_cast<std::uint8_t>(huge >> 16),
      static_cast<std::uint8_t>(huge >> 24)};
  dec.feed(prefix, sizeof prefix);
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
  EXPECT_FALSE(dec.next(payload, len));
  EXPECT_TRUE(dec.corrupt());
  // Corrupt is terminal: further bytes change nothing.
  dec.feed(prefix, sizeof prefix);
  EXPECT_FALSE(dec.next(payload, len));
}

TEST(Frame, StatsRequestTrailingBytesAreForwardCompatible) {
  // A future revision may append request fields to STATS; anything under
  // the v1 response size decodes as a request, never as a protocol error.
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kStats, 11, std::nullopt);
  buf.push_back(0x01);  // one future request field byte
  buf[0] += 1;          // patch the length prefix (LE low byte, small frame)
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kOk);
  EXPECT_FALSE(f.has_body);
  EXPECT_EQ(f.header.req_id, 11u);
}

TEST(Frame, TrailingBytesAreForwardCompatible) {
  // A future revision may append fields; v1 decoders ignore the tail.
  std::vector<std::uint8_t> buf;
  encode_view_frame(buf, MsgType::kLeader, Status::kOk, 3,
                    ViewBody{1, ProcessId{0}, 5});
  buf.push_back(0xab);  // extra byte beyond the known body
  buf[0] += 1;          // patch the length prefix (LE low byte, small frame)
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].view.epoch, 5u);
}

TEST(Frame, AppendRequestAndResponseRoundTrip) {
  std::vector<std::uint8_t> buf;
  AppendReqBody req;
  req.gid = 9;
  req.client = 0xAABBCCDDEE;
  req.seq = 77;
  req.command = 65000;
  encode_append_request(buf, 5, req);
  AppendRespBody resp;
  resp.gid = 9;
  resp.index = 123456789;
  resp.leader = 2;
  resp.epoch = 42;
  encode_append_response(buf, Status::kOk, 5, resp);
  const auto frames = decode_stream(buf, 3);  // odd chunking on purpose
  ASSERT_EQ(frames.size(), 2u);
  // Role-based decode: the request interpretation is only available on
  // the 32-byte request frame.
  ASSERT_TRUE(frames[0].has_append_req);
  EXPECT_EQ(frames[0].append_req.gid, 9u);
  EXPECT_EQ(frames[0].append_req.client, 0xAABBCCDDEEull);
  EXPECT_EQ(frames[0].append_req.seq, 77u);
  EXPECT_EQ(frames[0].append_req.command, 65000u);
  EXPECT_FALSE(frames[1].has_append_req);
  EXPECT_EQ(frames[1].append_resp.gid, 9u);
  EXPECT_EQ(frames[1].append_resp.index, 123456789u);
  EXPECT_EQ(frames[1].append_resp.leader, 2u);
  EXPECT_EQ(frames[1].append_resp.epoch, 42u);
}

TEST(Frame, NotLeaderResponseCarriesTheRedirectHint) {
  std::vector<std::uint8_t> buf;
  AppendRespBody resp;
  resp.gid = 4;
  resp.leader = kNoProcess;
  resp.epoch = 17;
  encode_append_response(buf, Status::kNotLeader, 8, resp);
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status, Status::kNotLeader);
  EXPECT_EQ(frames[0].append_resp.leader, kNoProcess);
  EXPECT_EQ(frames[0].append_resp.epoch, 17u);
}

TEST(Frame, ReadLogRoundTrip) {
  std::vector<std::uint8_t> buf;
  ReadLogReqBody req;
  req.gid = 2;
  req.from = 100;
  req.max = 3;
  encode_readlog_request(buf, 6, req);
  encode_readlog_response(buf, 6, 2, /*commit_index=*/103,
                          {11, 22, 33});
  const auto frames = decode_stream(buf, 7);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].readlog_req.gid, 2u);
  EXPECT_EQ(frames[0].readlog_req.from, 100u);
  EXPECT_EQ(frames[0].readlog_req.max, 3u);
  EXPECT_TRUE(frames[0].readlog_resp.entries.empty())
      << "a request's `max` must not be misread as an entry count";
  EXPECT_EQ(frames[1].readlog_resp.commit_index, 103u);
  ASSERT_EQ(frames[1].readlog_resp.entries.size(), 3u);
  EXPECT_EQ(frames[1].readlog_resp.entries[0], 11u);
  EXPECT_EQ(frames[1].readlog_resp.entries[2], 33u);
}

TEST(Frame, CommitWatchAndEventRoundTrip) {
  std::vector<std::uint8_t> buf;
  encode_request(buf, MsgType::kCommitWatch, 3, WireGroupId{5});
  encode_commit_snapshot(buf, Status::kOk, 3, 5, /*commit_index=*/40);
  encode_commit_event(buf, 5, /*index=*/41, /*value=*/777);
  const auto frames = decode_stream(buf, 1);  // byte-at-a-time
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].commit.gid, 5u);
  EXPECT_EQ(frames[1].commit.index, 40u);
  EXPECT_EQ(frames[2].header.type, MsgType::kCommitEvent);
  EXPECT_EQ(frames[2].header.req_id, 0u);
  EXPECT_EQ(frames[2].commit.index, 41u);
  EXPECT_EQ(frames[2].commit.value, 777u);
}

TEST(Frame, CommitEventWithoutFullBodyIsMalformed) {
  // Like kEvent: pushes must carry their complete body.
  std::vector<std::uint8_t> buf;
  encode_gid_response(buf, MsgType::kCommitEvent, Status::kOk, 0, 5);
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
}

TEST(Frame, StatsV11FieldsRoundTripAndOldBodiesStayZero) {
  std::vector<std::uint8_t> buf;
  StatsBody stats;
  stats.queries = 5;
  stats.appends = 9;
  stats.commit_events = 4;
  stats.log_reads = 2;
  encode_stats_response(buf, 1, stats);
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].stats.appends, 9u);
  EXPECT_EQ(frames[0].stats.commit_events, 4u);
  EXPECT_EQ(frames[0].stats.log_reads, 2u);

  // A v1.0 stats body (48 bytes) decodes with the new fields zeroed.
  std::vector<std::uint8_t> old(buf.begin(), buf.end());
  old[0] -= 24;  // shrink the length prefix by the three new fields
  old.resize(old.size() - 24);
  Frame f;
  EXPECT_EQ(decode_payload(old.data() + 4, old.size() - 4, f),
            DecodeResult::kOk);
  EXPECT_EQ(f.stats.queries, 5u);
  EXPECT_EQ(f.stats.appends, 0u);
}

TEST(Frame, RegMirrorFramesRoundTrip) {
  // v1.2 mirror stream: HELLO, a PUSH of three cells, the cumulative ACK.
  std::vector<std::uint8_t> buf;
  encode_reg_hello(buf, Status::kOk, /*req_id=*/1, /*node=*/2);
  const RegCellUpdate cells[3] = {{10, 100}, {11, 0}, {65535, 1ull << 40}};
  encode_reg_push(buf, /*gid=*/42, /*seq=*/7, cells, 3);
  encode_reg_ack(buf, /*seq=*/7);
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 3u);

  EXPECT_EQ(frames[0].header.type, MsgType::kRegHello);
  EXPECT_EQ(frames[0].reg_hello.node, 2u);

  EXPECT_EQ(frames[1].header.type, MsgType::kRegPush);
  EXPECT_EQ(frames[1].header.req_id, 0u) << "pushes are one-way";
  EXPECT_EQ(frames[1].reg_push.gid, 42u);
  EXPECT_EQ(frames[1].reg_push.seq, 7u);
  ASSERT_EQ(frames[1].reg_push.cells.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[1].reg_push.cells[i].cell, cells[i].cell);
    EXPECT_EQ(frames[1].reg_push.cells[i].value, cells[i].value);
  }

  EXPECT_EQ(frames[2].header.type, MsgType::kRegAck);
  EXPECT_EQ(frames[2].reg_ack.seq, 7u);
}

TEST(Frame, RegPushRejectsOverAndUnderCountedBodies) {
  std::vector<std::uint8_t> buf;
  const RegCellUpdate cells[2] = {{1, 2}, {3, 4}};
  encode_reg_push(buf, 1, 1, cells, 2);
  // Claim three cells but carry two: the count must be validated against
  // the body length, never trusted.
  buf[4 + kHeaderBytes + 16] = 3;
  Frame f;
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
  // A count above the frame cap is rejected outright.
  buf[4 + kHeaderBytes + 16] = static_cast<std::uint8_t>(255);
  buf[4 + kHeaderBytes + 17] = 1;  // 511 > kMaxPushCells
  EXPECT_EQ(decode_payload(buf.data() + 4, buf.size() - 4, f),
            DecodeResult::kBadBody);
  EXPECT_THROW(encode_reg_push(buf, 1, 1, cells, 0), std::exception);
}

TEST(Frame, SessionOpenRoundTripsBothRoles) {
  std::vector<std::uint8_t> buf;
  encode_session_open(buf, Status::kOk, /*req_id=*/9, /*gid=*/5,
                      /*client_or_ttl=*/1234567);
  encode_session_open(buf, Status::kSessionEvicted, 10, 5, 0);
  const auto frames = decode_stream(buf, buf.size());
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.type, MsgType::kSessionOpen);
  EXPECT_EQ(frames[0].session.gid, 5u);
  EXPECT_EQ(frames[0].session.client, 1234567u) << "request role";
  EXPECT_EQ(frames[0].session.ttl_us, 1234567u) << "response role";
  EXPECT_EQ(frames[1].header.status, Status::kSessionEvicted);
}

}  // namespace
}  // namespace omega::net
