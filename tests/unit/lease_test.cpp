// LeaseState / ReadWaiters unit coverage — the pure state machines under
// the linearizable-read path, driven with scripted clocks. The properties
// asserted here are the safety argument of the lease design: epoch bumps
// kill validity instantly, a skew bound >= ttl makes the lease
// unacquirable, and a new holder waits out the old one's maximal reach.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "smr/lease.h"

namespace omega::smr {
namespace {

constexpr std::int64_t kTtl = 1000;
constexpr std::int64_t kSkew = 100;

TEST(LeaseStateTest, ConfirmedHeartbeatExtendsByTtlMinusSkew) {
  LeaseState l(kTtl, kSkew);
  EXPECT_FALSE(l.valid(0));  // no confirmed heartbeat yet
  l.on_heartbeat_confirmed(/*t_send_us=*/500);
  EXPECT_EQ(l.lease_until_us(), 500 + kTtl - kSkew);
  EXPECT_TRUE(l.valid(500));
  EXPECT_TRUE(l.valid(500 + kTtl - kSkew - 1));
  EXPECT_FALSE(l.valid(500 + kTtl - kSkew));  // end is exclusive
}

TEST(LeaseStateTest, ExtensionIsMonotonic) {
  LeaseState l(kTtl, kSkew);
  l.on_heartbeat_confirmed(1000);
  l.on_heartbeat_confirmed(400);  // an older confirmation arriving late
  EXPECT_EQ(l.lease_until_us(), 1000 + kTtl - kSkew);  // never regresses
}

TEST(LeaseStateTest, EpochBumpDropsTheLeaseInstantly) {
  LeaseState l(kTtl, kSkew);
  l.on_heartbeat_confirmed(100);
  ASSERT_TRUE(l.valid_at_epoch(0, 200));
  // The view moves to epoch 3: the then-valid lease dies immediately,
  // long before its wall-clock expiry — and the drop reports the edge.
  EXPECT_TRUE(l.on_epoch_change(3, 200));
  EXPECT_FALSE(l.valid(200));
  EXPECT_FALSE(l.valid_at_epoch(3, 200));
  EXPECT_EQ(l.epoch(), 3u);
  // A second bump with nothing valid is not an edge.
  EXPECT_FALSE(l.on_epoch_change(4, 201));
  // Same-epoch notifications are no-ops.
  l.on_heartbeat_confirmed(300);
  EXPECT_FALSE(l.on_epoch_change(4, 301));
  EXPECT_TRUE(l.valid(301));
}

TEST(LeaseStateTest, ValidAtEpochFencesStaleEpochs) {
  LeaseState l(kTtl, kSkew);
  l.on_epoch_change(5, 0);
  l.on_heartbeat_confirmed(100);
  EXPECT_TRUE(l.valid_at_epoch(5, 150));
  EXPECT_FALSE(l.valid_at_epoch(4, 150));  // deposed holder's view
  EXPECT_FALSE(l.valid_at_epoch(6, 150));
}

TEST(LeaseStateTest, SkewAtLeastTtlIsNeverValid) {
  // skew >= ttl: every extension lands at or before its own send time,
  // so the lease is invalid by construction — the configured refusal for
  // clocks that cannot be trusted inside the ttl.
  LeaseState eq(kTtl, kTtl);
  eq.on_heartbeat_confirmed(100);
  EXPECT_FALSE(eq.valid(100));
  EXPECT_FALSE(eq.valid(99));

  LeaseState over(kTtl, kTtl + 50);
  over.on_heartbeat_confirmed(100);
  for (std::int64_t t = 0; t < 3 * kTtl; t += 10) {
    EXPECT_FALSE(over.valid(t)) << "valid at t=" << t;
  }
}

TEST(LeaseStateTest, ForeignHeartbeatImposesAcquireFloor) {
  LeaseState l(kTtl, kSkew);
  // Watch the old holder heartbeat at t=50: this node may not be valid
  // until the foreign lease has provably died (50 + ttl + skew).
  l.on_foreign_heartbeat(50);
  EXPECT_EQ(l.not_before_us(), 50 + kTtl + kSkew);
  l.on_heartbeat_confirmed(500);  // own quorum lands inside the floor
  EXPECT_FALSE(l.valid(600));     // would overlap the old holder — refused
  EXPECT_TRUE(l.valid(50 + kTtl + kSkew));  // floor passed, lease usable
  // The floor only ratchets forward.
  l.on_foreign_heartbeat(10);
  EXPECT_EQ(l.not_before_us(), 50 + kTtl + kSkew);
}

TEST(ReadWaitersTest, WakesInAscendingFenceOrder) {
  ReadWaiters w;
  std::vector<int> order;
  for (int fence : {7, 3, 9, 5, 3}) {
    w.park(static_cast<std::uint64_t>(fence), /*deadline_us=*/1000,
           [&order, fence](bool passed) {
             EXPECT_TRUE(passed);
             order.push_back(fence);
           });
  }
  ASSERT_EQ(w.size(), 5u);
  std::vector<ReadWaiters::Fire> fired;
  EXPECT_EQ(w.wake(/*applied=*/6, fired), 3u);  // 3, 3, 5 — not 7 or 9
  for (auto& f : fired) f(true);
  EXPECT_EQ(order, (std::vector<int>{3, 3, 5}));
  EXPECT_EQ(w.size(), 2u);

  fired.clear();
  order.clear();
  EXPECT_EQ(w.wake(/*applied=*/9, fired), 2u);
  for (auto& f : fired) f(true);
  EXPECT_EQ(order, (std::vector<int>{7, 9}));
  EXPECT_TRUE(w.empty());
}

TEST(ReadWaitersTest, WakeBelowEveryFenceIsANoOp) {
  ReadWaiters w;
  w.park(10, 1000, [](bool) { FAIL() << "woken below its fence"; });
  std::vector<ReadWaiters::Fire> fired;
  EXPECT_EQ(w.wake(9, fired), 0u);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(w.size(), 1u);
}

TEST(ReadWaitersTest, ExpireCollectsOnlyPastDeadlines) {
  ReadWaiters w;
  int expired = 0;
  bool survivor_woke = false;
  w.park(100, /*deadline_us=*/500,
         [&expired](bool passed) {
           EXPECT_FALSE(passed);
           ++expired;
         });
  w.park(2, /*deadline_us=*/2000, [&survivor_woke](bool passed) {
    EXPECT_TRUE(passed);  // must reach us via wake, never via expire
    survivor_woke = true;
  });
  std::vector<ReadWaiters::Fire> fired;
  EXPECT_EQ(w.expire(/*now_us=*/500, fired), 1u);  // deadline is inclusive
  for (auto& f : fired) f(false);
  EXPECT_EQ(expired, 1);
  EXPECT_FALSE(survivor_woke);
  EXPECT_EQ(w.size(), 1u);
  // The heap survives the swap-remove: the survivor still wakes on fence.
  fired.clear();
  EXPECT_EQ(w.wake(2, fired), 1u);
  for (auto& f : fired) f(true);
  EXPECT_TRUE(survivor_woke);
  EXPECT_TRUE(w.empty());
}

TEST(ReadWaitersTest, ExpireThenWakeKeepsAscendingOrder) {
  // Regression shape: expire()'s swap-remove breaks heap order and must
  // re-heapify, or the next wake() pops fences out of order.
  ReadWaiters w;
  std::vector<int> order;
  auto rec = [&order](int fence) {
    return [&order, fence](bool passed) {
      if (passed) order.push_back(fence);
    };
  };
  w.park(1, /*deadline_us=*/10, rec(1));  // will expire
  w.park(8, 1000, rec(8));
  w.park(4, 1000, rec(4));
  w.park(6, 1000, rec(6));
  std::vector<ReadWaiters::Fire> fired;
  ASSERT_EQ(w.expire(/*now_us=*/10, fired), 1u);
  fired.clear();
  EXPECT_EQ(w.wake(/*applied=*/100, fired), 3u);
  for (auto& f : fired) f(true);
  EXPECT_EQ(order, (std::vector<int>{4, 6, 8}));
}

}  // namespace
}  // namespace omega::smr
