// Time-series black box (obs/time_series.h): per-metric ring wraparound
// keeps the newest capacity points, window math (delta/rate) reads the
// trailing window only, and windowed histogram quantiles track what
// happened *inside* the window where the registry's cumulative estimate
// is forever polluted by boot-time history.
#include "obs/time_series.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace omega::obs {
namespace {

MetricSample counter_sample(const std::string& name, std::int64_t value) {
  MetricSample m;
  m.name = name;
  m.kind = MetricSample::Kind::kCounter;
  m.value = value;
  return m;
}

MetricSample hist_sample(
    const std::string& name, std::int64_t count,
    std::vector<std::pair<std::uint8_t, std::uint64_t>> buckets) {
  MetricSample m;
  m.name = name;
  m.kind = MetricSample::Kind::kHistogram;
  m.value = count;  // cumulative sample count, like a registry scrape
  m.buckets = std::move(buckets);
  return m;
}

TEST(TimeSeries, RingWrapKeepsNewestPoints) {
  TimeSeries ts(8);
  // 20 ticks into an 8-point ring: only the last 8 survive, in order.
  for (int i = 0; i < 20; ++i) {
    ts.record({counter_sample("t.wrap", i * 10)}, /*wall_ms=*/1000 + i * 250);
  }
  EXPECT_EQ(ts.ticks(), 20u);
  EXPECT_EQ(ts.capacity(), 8u);
  const std::vector<std::int64_t> v = ts.values("t.wrap", 100);
  ASSERT_EQ(v.size(), 8u);
  EXPECT_EQ(v.front(), 120);  // tick 12, the oldest survivor
  EXPECT_EQ(v.back(), 190);   // tick 19
  EXPECT_EQ(ts.latest_value("t.wrap"), 190);
  EXPECT_EQ(ts.span_ms("t.wrap"), 7 * 250);
  TsPoint p;
  ASSERT_TRUE(ts.latest("t.wrap", &p));
  EXPECT_EQ(p.wall_ms, 1000 + 19 * 250);
}

TEST(TimeSeries, DeltaAndRateReadTheTrailingWindow) {
  TimeSeries ts(16);
  // +25 per 250ms tick, 8 ticks: wall 0..1750, value 0..175.
  for (int i = 0; i < 8; ++i) {
    ts.record({counter_sample("t.rate", i * 25)}, /*wall_ms=*/i * 250);
  }
  // Window 1000ms back from wall=1750 reaches the point at wall=750
  // (value 75): delta 100 over exactly 1000ms.
  EXPECT_EQ(ts.delta("t.rate", 1000), 100);
  EXPECT_DOUBLE_EQ(ts.rate("t.rate", 1000), 100.0);
  // A window holding only the newest point has no baseline.
  EXPECT_EQ(ts.delta("t.rate", 0), 0);
  EXPECT_DOUBLE_EQ(ts.rate("t.rate", 0), 0.0);
  // Unknown metrics answer zero, not UB.
  EXPECT_EQ(ts.delta("t.absent", 1000), 0);
  EXPECT_EQ(ts.latest_value("t.absent"), 0);
  EXPECT_FALSE(ts.latest("t.absent"));
}

TEST(TimeSeries, GaugeDeltaGoesNegative) {
  TimeSeries ts(8);
  MetricSample g;
  g.name = "t.gauge";
  g.kind = MetricSample::Kind::kGauge;
  g.value = 500;
  ts.record({g}, 0);
  g.value = 120;
  ts.record({g}, 250);
  EXPECT_EQ(ts.delta("t.gauge", 1000), -380);
}

TEST(TimeSeries, WindowedQuantileTracksTheWindowNotTheBoot) {
  TimeSeries ts(8);
  // Phase 1 (before the window): 100 samples of ~100ns land in bucket 7
  // (upper bound 127). Phase 2 (inside the window): 100 samples of ~1ms
  // land in bucket 20 (upper bound 1048575). The ticks carry CUMULATIVE
  // bucket counts, exactly like registry scrapes.
  ts.record({hist_sample("t.lat", 100, {{7, 100}})}, /*wall_ms=*/0);
  const auto tick2 = hist_sample("t.lat", 200, {{7, 100}, {20, 100}});
  ts.record({tick2}, /*wall_ms=*/1000);
  // The cumulative estimate still sees the boot-time fast half...
  EXPECT_EQ(tick2.quantile(0.01), 127u);
  // ...but the windowed quantile differences the buckets: every sample
  // inside the window is slow, at any percentile.
  EXPECT_EQ(ts.windowed_quantile("t.lat", 1000, 0.01), 1048575u);
  EXPECT_EQ(ts.windowed_quantile("t.lat", 1000, 0.50), 1048575u);
  EXPECT_EQ(ts.windowed_quantile("t.lat", 1000, 0.99), 1048575u);
  EXPECT_EQ(ts.windowed_count("t.lat", 1000), 100);
  // Quantiles on non-histograms are 0, never a crash.
  ts.record({counter_sample("t.ctr", 5)}, 0);
  ts.record({counter_sample("t.ctr", 6)}, 1000);
  EXPECT_EQ(ts.windowed_quantile("t.ctr", 1000, 0.5), 0u);
}

TEST(TimeSeries, WindowedQuantileMatchesExactAtBucketResolution) {
  TimeSeries ts(8);
  // Two same-bucket phases: windowed p99 collapses to the window's own
  // bucket even though the cumulative majority sits elsewhere.
  ts.record({hist_sample("t.exact", 1000, {{7, 1000}})}, 0);
  ts.record({hist_sample("t.exact", 1010, {{7, 1000}, {10, 10}})}, 500);
  // Exact samples in the window: ten values in bucket 10 (upper 1023).
  EXPECT_EQ(ts.windowed_quantile("t.exact", 500, 0.5), 1023u);
  EXPECT_EQ(ts.windowed_count("t.exact", 500), 10);
}

TEST(TimeSeries, RenderTextCoversEveryRecordedMetric) {
  TimeSeries ts(4);
  ts.record({counter_sample("t.render.ctr", 1),
             hist_sample("t.render.hist", 2, {{5, 2}})},
            0);
  ts.record({counter_sample("t.render.ctr", 4),
             hist_sample("t.render.hist", 7, {{5, 7}})},
            250);
  const std::string text = ts.render_text();
  EXPECT_NE(text.find("# omega time-series black box"), std::string::npos);
  EXPECT_NE(text.find("t.render.ctr counter"), std::string::npos);
  EXPECT_NE(text.find("t.render.hist histogram"), std::string::npos);
  EXPECT_NE(text.find("delta=3"), std::string::npos);
  EXPECT_NE(text.find("window_count=5"), std::string::npos);
}

}  // namespace
}  // namespace omega::obs
