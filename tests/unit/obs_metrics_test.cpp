// obs registry (obs/metrics.h): striped counters under concurrent
// writers, histogram bucket math against the exact percentile of
// common/stats.h, gauge multi-registration summing, and scrapes racing
// the write path. The registry is process-global, so every test uses its
// own metric names.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace omega::obs {
namespace {

const MetricSample* find(const std::vector<MetricSample>& samples,
                         const std::string& name) {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(ObsMetrics, CounterConcurrentWriters) {
  Counter& c = counter("test.obs.concurrent_counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, OversizedNameRejectedAtRegistration) {
  // Names ride the wire as u8-length strings; catching a >255-byte name
  // here keeps the METRICS encoder from ever needing to truncate.
  const std::string long_name(256, 'x');
  EXPECT_THROW(counter(long_name), InvariantViolation);
  EXPECT_THROW(histogram(long_name), InvariantViolation);
  EXPECT_THROW(Registry::instance().register_gauge(long_name, nullptr),
               InvariantViolation);
}

TEST(ObsMetrics, CounterNamedGetOrCreate) {
  Counter& a = counter("test.obs.same_name");
  Counter& b = counter("test.obs.same_name");
  EXPECT_EQ(&a, &b);  // one instance per name, stable for process life
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.value(), 7u);
}

TEST(ObsMetrics, HistogramBucketMath) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);

  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper(kHistogramBuckets - 1),
            ~std::uint64_t{0});
  // Every value lands in a bucket whose bounds contain it.
  for (const std::uint64_t v :
       std::vector<std::uint64_t>{0, 1, 7, 64, 12345, 1u << 30}) {
    const std::uint32_t b = Histogram::bucket_of(v);
    EXPECT_LE(v, Histogram::bucket_upper(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucket_upper(b - 1)) << v;
    }
  }
}

TEST(ObsMetrics, HistogramQuantileVsExactPercentile) {
  // The bucket-resolution estimate must bracket the exact percentile:
  // never below it, never more than 2x above (the bucket's width).
  Histogram& h = histogram("test.obs.quantile_hist");
  std::vector<double> exact;
  std::uint64_t v = 1;
  for (int i = 0; i < 500; ++i) {
    v = (v * 2862933555777941757ull + 3037000493ull) % 1000000;
    h.record(v);
    exact.push_back(static_cast<double>(v));
  }
  const auto samples = scrape();
  const MetricSample* s = find(samples, "test.obs.quantile_hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(s->value, 500);
  for (const double q : {0.5, 0.9, 0.99}) {
    const double truth = percentile(exact, q);
    const std::uint64_t est = s->quantile(q);
    EXPECT_GE(static_cast<double>(est), truth * 0.999)
        << "q=" << q << " est=" << est << " exact=" << truth;
    EXPECT_LE(static_cast<double>(est), truth * 2.0 + 1.0)
        << "q=" << q << " est=" << est << " exact=" << truth;
  }
}

TEST(ObsMetrics, HistogramConcurrentRecords) {
  Histogram& h = histogram("test.obs.concurrent_hist");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((t + 1) * 100 + i % 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  const auto samples = scrape();
  const MetricSample* s = find(samples, "test.obs.concurrent_hist");
  ASSERT_NE(s, nullptr);
  std::uint64_t bucket_total = 0;
  for (const auto& [b, n] : s->buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(ObsMetrics, GaugeMultiRegistrationSums) {
  Registry& reg = Registry::instance();
  const auto id1 =
      reg.register_gauge("test.obs.gauge_sum", [] { return 10; });
  const auto id2 =
      reg.register_gauge("test.obs.gauge_sum", [] { return 32; });
  const auto both = scrape();
  const MetricSample* s = find(both, "test.obs.gauge_sum");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(s->value, 42);
  reg.unregister_gauge(id1);
  const auto one = scrape();
  s = find(one, "test.obs.gauge_sum");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 32);
  reg.unregister_gauge(id2);
  const auto none = scrape();
  EXPECT_EQ(find(none, "test.obs.gauge_sum"), nullptr);
}

TEST(ObsMetrics, ScrapeRacesWriters) {
  // Scrapes interleaved with live writers must be well-defined (relaxed
  // torn-across-metrics snapshots are fine; crashes/TSan reports is what
  // this guards against) and the final scrape must see every add.
  Counter& c = counter("test.obs.scrape_race");
  Histogram& h = histogram("test.obs.scrape_race_hist");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        c.add();
        h.record(17);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const auto samples = scrape();
    const MetricSample* s = find(samples, "test.obs.scrape_race");
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->value, 0);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  const auto samples = scrape();
  const MetricSample* s = find(samples, "test.obs.scrape_race");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(s->value), c.value());
  const MetricSample* hs = find(samples, "test.obs.scrape_race_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->value, static_cast<std::int64_t>(h.count()));
}

TEST(ObsMetrics, ScrapeSortedByName) {
  counter("test.obs.zz_last");
  counter("test.obs.aa_first");
  const auto samples = scrape();
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return a.name < b.name;
      }));
}

TEST(ObsMetrics, PrometheusRendering) {
  counter("test.obs-prom.ctr").add(5);
  histogram("test.obs-prom.hist").record(3);
  const std::string text = render_prometheus(scrape());
  // '.' and '-' become '_'; counters render as a bare sample line.
  EXPECT_NE(text.find("test_obs_prom_ctr"), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_bucket{le="), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("test_obs_prom_hist_count 1"), std::string::npos);
}

}  // namespace
}  // namespace omega::obs
