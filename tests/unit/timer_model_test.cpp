// AWB2 semantics tests: the defining property of an asymptotically
// well-behaved timer is that after some point its duration dominates a
// diverging function of the timeout parameter (paper §2.3, conditions f1-f3).
#include "sim/timer_model.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(PerfectTimer, LinearInParameter) {
  auto t = make_perfect_timer(8);
  Rng rng(1);
  EXPECT_EQ(t->duration(0, 1, rng), 8);
  EXPECT_EQ(t->duration(1000, 5, rng), 40);
  EXPECT_TRUE(t->satisfies_awb2());
}

TEST(PerfectTimer, MinimumOneTick) {
  auto t = make_perfect_timer(1);
  Rng rng(1);
  EXPECT_GE(t->duration(0, 0, rng), 1);
}

TEST(ChaoticPrefixTimer, ArbitraryBeforeThreshold) {
  auto t = make_chaotic_prefix_timer(/*chaos_until=*/1000, /*unit=*/10,
                                     /*chaos_max=*/5);
  Rng rng(2);
  // During chaos, durations ignore x entirely (can be far below x*unit).
  bool saw_below = false;
  for (int i = 0; i < 200; ++i) {
    const auto d = t->duration(500, /*x=*/1000, rng);
    ASSERT_GE(d, 1);
    ASSERT_LE(d, 5);
    saw_below = saw_below || d < 1000 * 10;
  }
  EXPECT_TRUE(saw_below);
}

TEST(ChaoticPrefixTimer, DominatesAfterThreshold) {
  auto t = make_chaotic_prefix_timer(1000, 10, 5);
  Rng rng(3);
  for (std::uint64_t x = 1; x < 100; x *= 3) {
    EXPECT_GE(t->duration(1000, x, rng), static_cast<SimDuration>(10 * x));
  }
  EXPECT_TRUE(t->satisfies_awb2());
}

TEST(NonMonotoneTimer, AlwaysDominatesBase) {
  auto t = make_nonmonotone_timer(/*unit=*/4, /*jitter=*/2.0);
  Rng rng(4);
  for (std::uint64_t x = 1; x <= 64; x *= 2) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_GE(t->duration(i, x, rng), static_cast<SimDuration>(4 * x));
    }
  }
}

TEST(NonMonotoneTimer, IsActuallyNonMonotone) {
  // A later arming with a larger x can expire sooner than an earlier arming
  // with smaller x — allowed by AWB2 (T_R only has to dominate f_R, not be
  // monotone; paper Figure 1).
  auto t = make_nonmonotone_timer(4, 2.0);
  Rng rng(5);
  bool inversion = false;
  SimDuration prev = 0;
  for (int i = 0; i < 200 && !inversion; ++i) {
    const auto d_small = t->duration(i, 8, rng);
    const auto d_large = t->duration(i + 1, 9, rng);
    if (prev != 0 && d_large < d_small) inversion = true;
    prev = d_small;
  }
  EXPECT_TRUE(inversion);
}

TEST(SubDominatingTimer, CapsAndViolatesAwb2) {
  auto t = make_subdominating_timer(/*unit=*/10, /*cap=*/3);
  Rng rng(6);
  EXPECT_EQ(t->duration(0, 2, rng), 20);
  EXPECT_EQ(t->duration(0, 1000, rng), 30);     // capped: never grows past 30
  EXPECT_EQ(t->duration(0, 1u << 30, rng), 30); // condition f2 fails
  EXPECT_FALSE(t->satisfies_awb2());
}

TEST(TimerModels, DescribeNonEmpty) {
  Rng rng(7);
  for (auto& t :
       {make_perfect_timer(1), make_chaotic_prefix_timer(10, 1, 5),
        make_nonmonotone_timer(1, 0.5), make_subdominating_timer(1, 2)}) {
    EXPECT_FALSE(t->describe().empty());
  }
}

TEST(TimerModels, RejectBadParameters) {
  EXPECT_THROW(make_perfect_timer(0), InvariantViolation);
  EXPECT_THROW(make_chaotic_prefix_timer(0, 0, 1), InvariantViolation);
  EXPECT_THROW(make_nonmonotone_timer(1, -1.0), InvariantViolation);
  EXPECT_THROW(make_subdominating_timer(1, 0), InvariantViolation);
}

}  // namespace
}  // namespace omega
