// Wal unit coverage: the append/replay pair under clean restarts,
// segment rolls, torn tails, bit rot, and the FaultyWalIo disk-failure
// menu (short writes, ENOSPC, fsync EIO, torn records). Each test gets
// its own mkdtemp directory; a second Wal instance on the same dir IS
// the restart.
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "wal/wal.h"
#include "wal/wal_io.h"

namespace omega::wal {
namespace {

std::string make_dir() {
  char tmpl[] = "/tmp/omega_wal_XXXXXX";
  EXPECT_NE(::mkdtemp(tmpl), nullptr);
  return tmpl;
}

WalOptions small_opts(const std::string& dir, WalIo* io = nullptr) {
  WalOptions o;
  o.dir = dir;
  o.segment_bytes = 16 + 64;  // minimum legal: ~2 cell records per segment
  o.flush_interval_us = 200;
  o.io = io;
  return o;
}

/// Reads a segment file raw (test-side bit-flipping).
std::vector<std::uint8_t> slurp(const std::string& path) {
  std::vector<std::uint8_t> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return out;
  std::uint8_t buf[4096];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof buf, f);
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void spit(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
}

std::vector<std::string> segment_files(const std::string& dir) {
  PosixWalIo io;
  std::vector<std::string> segs;
  for (const auto& name : io.list(dir)) {
    if (name.rfind("wal-", 0) == 0) segs.push_back(dir + "/" + name);
  }
  return segs;
}

TEST(WalTest, Crc32KnownVector) {
  // The IEEE check value: CRC-32 of "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(WalTest, RoundTripAcrossRestart) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    EXPECT_EQ(wal.append_cell(7, 100, 0xAABB), 1u);
    EXPECT_EQ(wal.append_cell(7, 101, 0xCCDD), 2u);
    EXPECT_EQ(wal.append_cell(9, 100, 42), 3u);
    const std::uint64_t vals[] = {500, 501, 502};
    EXPECT_EQ(wal.append_applied(7, 0, 3, vals, 3), 4u);
    wal.flush();
    EXPECT_EQ(wal.durable_seq(), 4u);
    wal.stop();
  }
  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.records, 4u);
  EXPECT_EQ(r.truncated_bytes, 0u);
  ASSERT_EQ(r.groups.count(7), 1u);
  ASSERT_EQ(r.groups.count(9), 1u);
  const GroupImage& g7 = r.groups.at(7);
  EXPECT_EQ(g7.cells.at(100), 0xAABBu);
  EXPECT_EQ(g7.cells.at(101), 0xCCDDu);
  ASSERT_EQ(g7.applied.size(), 3u);
  EXPECT_EQ(g7.applied[0], 500u);
  EXPECT_EQ(g7.applied[2], 502u);
  EXPECT_EQ(g7.next_slot, 3u);
  EXPECT_EQ(r.groups.at(9).cells.at(100), 42u);
  // Seqs continue where the previous life stopped.
  EXPECT_EQ(wal.appended_seq(), 4u);
  EXPECT_EQ(wal.durable_seq(), 4u);
}

TEST(WalTest, RecordsStraddleSegmentRolls) {
  const std::string dir = make_dir();
  constexpr std::uint64_t kN = 40;  // ~1KB of records, ~13 tiny segments
  {
    Wal wal(small_opts(dir));
    wal.start();
    for (std::uint64_t i = 0; i < kN; ++i) {
      wal.append_cell(1, static_cast<std::uint32_t>(100 + i), 1000 + i);
    }
    wal.flush();
    wal.stop();
    EXPECT_GE(wal.stats().segments, 2u);
  }
  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.records, kN);
  EXPECT_GE(r.segments, 2u);
  const GroupImage& img = r.groups.at(1);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(img.cells.at(static_cast<std::uint32_t>(100 + i)), 1000 + i);
  }
}

TEST(WalTest, AppendingResumesAfterReplay) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    wal.append_cell(1, 100, 1);
    wal.flush();
    wal.stop();
  }
  {
    Wal wal(small_opts(dir));
    wal.start();  // implicit replay
    EXPECT_EQ(wal.appended_seq(), 1u);
    wal.append_cell(1, 101, 2);
    wal.flush();
    wal.stop();
  }
  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.records, 2u);
  EXPECT_EQ(r.groups.at(1).cells.at(100), 1u);
  EXPECT_EQ(r.groups.at(1).cells.at(101), 2u);
}

TEST(WalTest, TornTailIsTruncatedInPlace) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    for (std::uint32_t i = 0; i < 4; ++i) wal.append_cell(1, 100 + i, i);
    wal.flush();
    wal.stop();
  }
  // A crash mid-write: garbage after the last good record.
  auto segs = segment_files(dir);
  ASSERT_FALSE(segs.empty());
  std::vector<std::uint8_t> tail = slurp(segs.back());
  const std::size_t clean = tail.size();
  tail.insert(tail.end(), {0x13, 0x77, 0x00, 0xFF, 0x42});
  spit(segs.back(), tail);

  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.records, 4u);
  EXPECT_EQ(r.truncated_bytes, 5u);
  EXPECT_EQ(slurp(segs.back()).size(), clean);  // dropped on disk too
}

TEST(WalTest, BitFlipInLastSegmentIsATornTail) {
  const std::string dir = make_dir();
  WalOptions opts = small_opts(dir);
  opts.segment_bytes = 8u << 20;  // one segment: the flip IS the tail
  {
    Wal wal(opts);
    wal.start();
    for (std::uint32_t i = 0; i < 6; ++i) wal.append_cell(1, 100 + i, i);
    wal.flush();
    wal.stop();
  }
  auto segs = segment_files(dir);
  ASSERT_EQ(segs.size(), 1u);
  std::vector<std::uint8_t> data = slurp(segs.back());
  // Flip one payload byte inside the 4th record's body.
  const std::size_t at = 16 + 3 * 25 + 12;
  ASSERT_LT(at, data.size());
  data[at] ^= 0x01;
  spit(segs.back(), data);

  Wal wal(opts);
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);  // prefix survives; tail dropped
  EXPECT_EQ(r.records, 3u);
  EXPECT_GT(r.truncated_bytes, 0u);
  EXPECT_EQ(r.groups.at(1).cells.size(), 3u);
}

TEST(WalTest, BitFlipBeforeTheFinalSegmentIsCorruption) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    for (std::uint32_t i = 0; i < 12; ++i) wal.append_cell(1, 100 + i, i);
    wal.flush();
    wal.stop();
  }
  auto segs = segment_files(dir);
  ASSERT_GE(segs.size(), 2u);
  std::vector<std::uint8_t> first = slurp(segs.front());
  ASSERT_GT(first.size(), 20u);
  first[18] ^= 0x40;  // payload damage in a sealed segment
  spit(segs.front(), first);

  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_TRUE(r.corrupt);  // mid-stream damage is NOT a tail
}

TEST(WalTest, AppliedReplayIsIdempotent) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    const std::uint64_t a[] = {10, 20};
    wal.append_applied(5, 0, 2, a, 2);
    // Overlapping re-journal: same prefix, two new entries.
    const std::uint64_t b[] = {10, 20, 30, 40};
    wal.append_applied(5, 0, 5, b, 4);
    wal.flush();
    wal.stop();
  }
  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  const GroupImage& img = r.groups.at(5);
  ASSERT_EQ(img.applied.size(), 4u);
  EXPECT_EQ(img.applied[1], 20u);
  EXPECT_EQ(img.applied[3], 40u);
  EXPECT_EQ(img.next_slot, 5u);
}

TEST(WalTest, AppliedOverlapMismatchIsCorruption) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    const std::uint64_t a[] = {10, 20};
    wal.append_applied(5, 0, 2, a, 2);
    const std::uint64_t b[] = {11};  // contradicts history
    wal.append_applied(5, 0, 2, b, 1);
    wal.flush();
    wal.stop();
  }
  Wal wal(small_opts(dir));
  EXPECT_TRUE(wal.replay().corrupt);
}

TEST(WalTest, AppliedGapIsCorruption) {
  const std::string dir = make_dir();
  {
    Wal wal(small_opts(dir));
    wal.start();
    const std::uint64_t a[] = {99};
    wal.append_applied(5, 7, 8, a, 1);  // nothing before index 7
    wal.flush();
    wal.stop();
  }
  Wal wal(small_opts(dir));
  EXPECT_TRUE(wal.replay().corrupt);
}

TEST(WalTest, ShortWritesAreInvisibleToReplay) {
  const std::string dir = make_dir();
  FaultyWalIo::Faults faults;
  faults.short_write_every = 2;  // every other write() lands half
  FaultyWalIo io(faults);
  {
    Wal wal(small_opts(dir, &io));
    wal.start();
    for (std::uint32_t i = 0; i < 16; ++i) wal.append_cell(1, 100 + i, i);
    wal.flush();
    EXPECT_EQ(wal.durable_seq(), 16u);
    wal.stop();
  }
  EXPECT_GT(io.writes(), 16u);  // the retry loop really ran
  Wal wal(small_opts(dir));
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.records, 16u);
}

TEST(WalTest, TornWriteLieIsCaughtByReplay) {
  const std::string dir = make_dir();
  FaultyWalIo::Faults faults;
  // Call 1 = header, call 2 = the first flushed batch; tear a later one.
  faults.tear_write_at = 3;
  faults.torn_bytes = 10;
  FaultyWalIo io(faults);
  WalOptions opts = small_opts(dir, &io);
  opts.segment_bytes = 8u << 20;
  {
    Wal wal(opts);
    (void)wal.replay();
    for (std::uint32_t i = 0; i < 4; ++i) wal.append_cell(1, 100 + i, i);
    wal.start();  // one drain, one write: calls 1+2
    wal.flush();
    EXPECT_EQ(wal.durable_seq(), 4u);
    wal.append_cell(1, 200, 7);  // call 3: torn to 10 bytes, reported OK
    wal.flush();
    EXPECT_EQ(wal.durable_seq(), 5u);  // the lie: acked but not on disk
    wal.stop();
  }
  WalOptions clean = small_opts(dir);
  clean.segment_bytes = 8u << 20;
  Wal wal(clean);
  const ReplayResult r = wal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.records, 4u);  // the torn record is gone, prefix intact
  EXPECT_GT(r.truncated_bytes, 0u);
  EXPECT_EQ(r.groups.at(1).cells.count(200), 0u);
}

TEST(WalTest, FullDiskDegradesInsteadOfAcking) {
  const std::string dir = make_dir();
  FaultyWalIo::Faults faults;
  // The budget is spent by the segment header alone, so the first record
  // write hits ENOSPC no matter how the flusher batches.
  faults.disk_capacity_bytes = 8;
  FaultyWalIo io(faults);
  WalOptions opts = small_opts(dir, &io);
  opts.segment_bytes = 8u << 20;
  Wal wal(opts);
  wal.start();
  for (std::uint32_t i = 0; i < 8; ++i) wal.append_cell(1, 100 + i, i);
  wal.flush();  // returns because the log degraded, not because durable
  EXPECT_LT(wal.durable_seq(), wal.appended_seq());
  EXPECT_GE(wal.stats().io_errors, 1u);
  wal.stop();
}

TEST(WalTest, FsyncEioFreezesDurableSeq) {
  const std::string dir = make_dir();
  FaultyWalIo::Faults faults;
  faults.sync_fail_after = 1;  // first barrier lands, the next EIOs
  FaultyWalIo io(faults);
  WalOptions opts = small_opts(dir, &io);
  opts.segment_bytes = 8u << 20;
  Wal wal(opts);
  (void)wal.replay();
  wal.append_cell(1, 100, 1);
  wal.start();
  wal.flush();
  const std::uint64_t durable = wal.durable_seq();
  EXPECT_EQ(durable, 1u);
  wal.append_cell(1, 101, 2);
  wal.flush();  // returns on degradation
  EXPECT_EQ(wal.durable_seq(), durable);  // frozen at the last good barrier
  EXPECT_GE(wal.stats().io_errors, 1u);
  wal.stop();
}

TEST(WalTest, InjectedLatencySlowsTheDiskWithoutChangingResults) {
  const std::string dir = make_dir();
  FaultyWalIo io(FaultyWalIo::Faults{});
  io.set_latency_us(2000);  // every write() and sync() eats >= 2ms
  WalOptions opts = small_opts(dir, &io);
  opts.segment_bytes = 8u << 20;
  Wal wal(opts);
  wal.start();
  const auto t0 = std::chrono::steady_clock::now();
  wal.append_cell(1, 100, 7);
  wal.flush();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  // One record write + one barrier, each delayed 2ms: the flush cannot
  // have returned faster than a single injected delay.
  EXPECT_GE(elapsed, 2000);
  EXPECT_EQ(wal.durable_seq(), 1u);  // slow, not wrong
  io.set_latency_us(0);  // turns off from the next call
  wal.append_cell(1, 101, 8);
  wal.flush();
  EXPECT_EQ(wal.durable_seq(), 2u);
  wal.stop();
  Wal rewal(small_opts(dir));
  const ReplayResult r = rewal.replay();
  EXPECT_FALSE(r.corrupt);
  EXPECT_EQ(r.groups.at(1).cells.at(101), 8u);
}

}  // namespace
}  // namespace omega::wal
