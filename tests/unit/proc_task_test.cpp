// Tests of the coroutine execution shell: the contract is that a task
// suspends at *every* shared-memory operation and that the driver fully
// controls when operations happen and what they return.
#include "core/proc_task.h"

#include <gtest/gtest.h>

#include <vector>

namespace omega {
namespace {

ProcTask read_twice_sum(Cell a, Cell b, std::uint64_t* out) {
  const std::uint64_t x = co_await ReadOp{a};
  const std::uint64_t y = co_await ReadOp{b};
  *out = x + y;
  co_await WriteOp{a, x + y};
}

TEST(ProcTask, SuspendsAtEveryOperation) {
  std::uint64_t out = 0;
  ProcTask t = read_twice_sum(Cell{1}, Cell{2}, &out);
  EXPECT_EQ(t.pending(), OpKind::kNone);  // not started
  t.start();
  ASSERT_EQ(t.pending(), OpKind::kRead);
  EXPECT_EQ(t.pending_cell(), (Cell{1}));
  t.resume(10);
  ASSERT_EQ(t.pending(), OpKind::kRead);
  EXPECT_EQ(t.pending_cell(), (Cell{2}));
  t.resume(32);
  ASSERT_EQ(t.pending(), OpKind::kWrite);
  EXPECT_EQ(out, 42u);  // body ran up to the write suspension
  EXPECT_EQ(t.pending_value(), 42u);
  t.resume(0);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.pending(), OpKind::kDone);
}

ProcTask all_ops() {
  (void)co_await LeaderQueryOp{};
  co_await WaitTimerOp{};
  co_await YieldOp{};
}

TEST(ProcTask, AllOpKindsReported) {
  ProcTask t = all_ops();
  t.start();
  EXPECT_EQ(t.pending(), OpKind::kLeaderQuery);
  t.resume(3);
  EXPECT_EQ(t.pending(), OpKind::kWaitTimer);
  t.resume(0);
  EXPECT_EQ(t.pending(), OpKind::kYield);
  t.resume(0);
  EXPECT_TRUE(t.done());
}

ProcTask leader_echo(std::vector<std::uint64_t>* seen) {
  for (int i = 0; i < 3; ++i) {
    seen->push_back(co_await LeaderQueryOp{});
  }
}

TEST(ProcTask, ResumeValueDelivered) {
  std::vector<std::uint64_t> seen;
  ProcTask t = leader_echo(&seen);
  t.start();
  t.resume(7);
  t.resume(8);
  t.resume(9);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_TRUE(t.done());
}

ProcTask eternal(Cell c) {
  for (;;) {
    co_await WriteOp{c, 1};
  }
}

TEST(ProcTask, EternalTaskNeverDone) {
  ProcTask t = eternal(Cell{0});
  t.start();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(t.pending(), OpKind::kWrite);
    t.resume(0);
  }
  EXPECT_FALSE(t.done());
}

ProcTask throws_mid_way(Cell c) {
  co_await ReadOp{c};
  throw std::runtime_error("boom");
}

TEST(ProcTask, ExceptionPropagatesOnResume) {
  ProcTask t = throws_mid_way(Cell{0});
  t.start();
  EXPECT_THROW(t.resume(0), std::runtime_error);
  EXPECT_TRUE(t.done());
}

TEST(ProcTask, MoveTransfersOwnership) {
  std::uint64_t out = 0;
  ProcTask a = read_twice_sum(Cell{0}, Cell{1}, &out);
  a.start();
  ProcTask b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): contract check
  ASSERT_TRUE(b.valid());
  b.resume(1);
  b.resume(2);
  EXPECT_EQ(out, 3u);
}

TEST(ProcTask, ResumeAfterDoneRejected) {
  std::uint64_t out = 0;
  ProcTask t = read_twice_sum(Cell{0}, Cell{1}, &out);
  t.start();
  t.resume(0);
  t.resume(0);
  t.resume(0);  // completes the write
  EXPECT_TRUE(t.done());
  EXPECT_THROW(t.resume(0), InvariantViolation);
}

TEST(ProcTask, DestructionMidSuspensionIsSafe) {
  std::uint64_t out = 0;
  {
    ProcTask t = read_twice_sum(Cell{0}, Cell{1}, &out);
    t.start();
    // destroyed while suspended on the first read
  }
  SUCCEED();
}

}  // namespace
}  // namespace omega
