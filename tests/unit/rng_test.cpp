#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace omega {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64()) << "diverged at i=" << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(-3, 9);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 9);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(5, 5), 5);
}

TEST(Rng, UniformCoversRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng r(1);
  EXPECT_THROW(r.uniform(3, 2), InvariantViolation);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsCentered) {
  Rng r(17);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(23);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, HeavyTailWithinBounds) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.heavy_tail(1, 500, 0.3);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 500);
  }
}

TEST(Rng, HeavyTailProducesTail) {
  Rng r(31);
  std::int64_t max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    max_seen = std::max(max_seen, r.heavy_tail(1, 500, 0.5));
  }
  EXPECT_GE(max_seen, 100);  // escalations do occur
}

TEST(Rng, ForkIsDeterministicAndPure) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f1_again = Rng(99).fork(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(f1.next_u64(), f1_again.next_u64());
  }
  // Forking does not perturb the parent stream.
  Rng a(99), b(99);
  (void)a.fork(123);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkStreamsDecorrelated) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Splitmix, KnownSequenceIsStable) {
  // Pin the seeding path: identical binaries on any platform must produce
  // identical runs (reproducibility contract of the whole harness).
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  ASSERT_EQ(first, 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace omega
