#include "core/factory.h"

#include <gtest/gtest.h>

#include "core/omega_write_efficient.h"

namespace omega {
namespace {

TEST(Factory, BuildsEveryAlgorithm) {
  for (AlgoKind kind : all_algorithms()) {
    OmegaInstance inst = make_omega(kind, 4);
    EXPECT_EQ(inst.processes.size(), 4u);
    ASSERT_NE(inst.memory, nullptr);
    for (ProcessId i = 0; i < 4; ++i) {
      EXPECT_EQ(inst.processes[i]->self(), i);
      EXPECT_EQ(inst.processes[i]->n(), 4u);
      EXPECT_EQ(inst.processes[i]->algorithm_name(), algo_name(kind));
    }
  }
}

TEST(Factory, LayoutFamiliesPerAlgorithm) {
  struct Expect {
    AlgoKind kind;
    std::vector<std::string> groups;
  };
  const std::vector<Expect> expects = {
      {AlgoKind::kWriteEfficient, {"SUSPICIONS", "PROGRESS", "STOP"}},
      {AlgoKind::kBounded, {"SUSPICIONS", "PROGRESS", "LAST", "STOP"}},
      {AlgoKind::kNwnr, {"SUSPICIONS_V", "PROGRESS", "STOP"}},
      {AlgoKind::kStepClock, {"SUSPICIONS", "PROGRESS", "STOP"}},
      {AlgoKind::kEvSync, {"HB", "SUSPEV"}},
  };
  for (const auto& e : expects) {
    OmegaInstance inst = make_omega(e.kind, 3);
    for (const auto& name : e.groups) {
      GroupId g = 0;
      EXPECT_TRUE(inst.memory->layout().find_group(name, g))
          << algo_name(e.kind) << " missing " << name;
    }
    EXPECT_EQ(inst.memory->layout().num_groups(), e.groups.size())
        << algo_name(e.kind);
  }
}

TEST(Factory, ExtraRegistersAppendedToLayout) {
  GroupId extra = 0;
  OmegaInstance inst = make_omega(
      AlgoKind::kWriteEfficient, 3, /*memory_factory=*/{},
      [&extra](LayoutBuilder& b) {
        extra = b.add_array("APP", 3, OwnerRule::kRowOwner, false);
      });
  GroupId found = 0;
  ASSERT_TRUE(inst.memory->layout().find_group("APP", found));
  EXPECT_EQ(found, extra);
  // Omega's groups still come first and are intact.
  GroupId susp = 0;
  ASSERT_TRUE(inst.memory->layout().find_group("SUSPICIONS", susp));
  EXPECT_LT(inst.memory->layout().group(susp).first,
            inst.memory->layout().group(found).first);
}

TEST(Factory, ColdStartCandidates) {
  OmegaInstance inst =
      make_omega(AlgoKind::kWriteEfficient, 4, std::vector<ProcessId>{});
  auto* p2 =
      dynamic_cast<OmegaWriteEfficient*>(inst.processes[2].get());
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->candidates().members(), (std::vector<ProcessId>{2}));
}

TEST(Factory, WarmStartCandidates) {
  OmegaInstance inst = make_omega(AlgoKind::kWriteEfficient, 3);
  auto* p0 = dynamic_cast<OmegaWriteEfficient*>(inst.processes[0].get());
  ASSERT_NE(p0, nullptr);
  EXPECT_EQ(p0->candidates().members(), (std::vector<ProcessId>{0, 1, 2}));
}

TEST(Factory, CustomMemoryFactoryUsed) {
  bool called = false;
  OmegaInstance inst = make_omega(
      AlgoKind::kBounded, 2,
      [&called](Layout layout, std::uint32_t n) {
        called = true;
        return std::unique_ptr<MemoryBackend>(
            std::make_unique<SimMemory>(std::move(layout), n));
      });
  EXPECT_TRUE(called);
  EXPECT_EQ(inst.memory->num_processes(), 2u);
}

TEST(Factory, NamesAreStable) {
  EXPECT_EQ(algo_name(AlgoKind::kWriteEfficient), "fig2-write-efficient");
  EXPECT_EQ(algo_name(AlgoKind::kBounded), "fig5-bounded");
  EXPECT_EQ(algo_name(AlgoKind::kNwnr), "nwnr-variant");
  EXPECT_EQ(algo_name(AlgoKind::kStepClock), "stepclock-variant");
  EXPECT_EQ(algo_name(AlgoKind::kEvSync), "evsync-baseline");
  EXPECT_EQ(all_algorithms().size(), 5u);
  EXPECT_EQ(paper_algorithms().size(), 2u);
}

TEST(Factory, RejectsBadN) {
  EXPECT_THROW(make_omega(AlgoKind::kWriteEfficient, 0), InvariantViolation);
  EXPECT_THROW(make_omega(AlgoKind::kWriteEfficient, kMaxProcesses + 1),
               InvariantViolation);
}

TEST(Factory, SingletonInstanceWorks) {
  OmegaInstance inst = make_omega(AlgoKind::kBounded, 1);
  EXPECT_EQ(inst.processes[0]->leader(), 0u);
}

}  // namespace
}  // namespace omega
