#include "core/candidate_set.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(CandidateSet, AlwaysContainsSelf) {
  CandidateSet s(5, 2);
  EXPECT_TRUE(s.contains(2));
  EXPECT_EQ(s.size(), 1u);
}

TEST(CandidateSet, InitialMembersAdded) {
  CandidateSet s(5, 0, {1, 3, 3});
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 3u);
}

TEST(CandidateSet, InsertEraseIdempotent) {
  CandidateSet s(4, 0);
  s.insert(2);
  s.insert(2);
  EXPECT_EQ(s.size(), 2u);
  s.erase(2);
  s.erase(2);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_FALSE(s.contains(2));
}

TEST(CandidateSet, CannotEraseSelf) {
  CandidateSet s(4, 1);
  EXPECT_THROW(s.erase(1), InvariantViolation);
  EXPECT_TRUE(s.contains(1));
}

TEST(CandidateSet, MembersSortedSnapshot) {
  CandidateSet s(6, 4, {0, 2});
  EXPECT_EQ(s.members(), (std::vector<ProcessId>{0, 2, 4}));
}

TEST(CandidateSet, BoundsChecked) {
  CandidateSet s(3, 0);
  EXPECT_THROW(s.insert(3), InvariantViolation);
  EXPECT_THROW(s.contains(99), InvariantViolation);
  EXPECT_THROW(CandidateSet(3, 7), InvariantViolation);
}

TEST(CandidateSet, SingletonSystem) {
  CandidateSet s(1, 0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.members(), (std::vector<ProcessId>{0}));
}

}  // namespace
}  // namespace omega
