#include "common/table.h"

#include "common/check.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

TEST(AsciiTable, AlignsColumns) {
  AsciiTable t({"algo", "n", "converged"});
  t.add_row({"fig2", "8", "yes"});
  t.add_row({"fig5-bounded", "32", "yes"});
  const std::string out = t.render();
  // Every row has the same rendered width.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  int lines = 0;
  while (pos < out.size()) {
    const auto next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len) << "line " << lines;
    pos = next + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 4);  // header + rule + 2 rows
}

TEST(AsciiTable, ShortRowsPadded) {
  AsciiTable t({"a", "b"});
  t.add_row({"x"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.render().find("x"), std::string::npos);
}

TEST(AsciiTable, RejectsOverlongRow) {
  AsciiTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), InvariantViolation);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), InvariantViolation);
}

TEST(FmtDouble, Digits) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(FmtCount, ThousandSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(12), "12");
}

TEST(Banner, ContainsTitleAndLines) {
  const std::string b = banner("E2 convergence", {"paper: Thm 1"});
  EXPECT_NE(b.find("E2 convergence"), std::string::npos);
  EXPECT_NE(b.find("paper: Thm 1"), std::string::npos);
}

}  // namespace
}  // namespace omega
