// Flight recorder (obs/flight_recorder.h): ring wraparound keeps the
// rendered trace bounded to the last kTraceRingSize events per thread,
// the merged dump is time-ordered across threads, and dump_trace()
// writes a parseable file with its reason header. The recorder is
// process-global, so tests key on event operand ranges they alone use.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace omega::obs {
namespace {

/// Parsed line of render_trace(): "<ts_ns> t<thread> <event> a=<a> b=<b>".
struct TraceLine {
  std::int64_t ts = 0;
  std::string event;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

std::vector<TraceLine> parse(const std::string& text) {
  std::vector<TraceLine> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    TraceLine t;
    std::string thread_col, a_col, b_col;
    std::istringstream ls(line);
    if (!(ls >> t.ts >> thread_col >> t.event >> a_col >> b_col)) continue;
    t.a = std::stoull(a_col.substr(a_col.find('=') + 1));
    t.b = std::stoull(b_col.substr(b_col.find('=') + 1));
    out.push_back(t);
  }
  return out;
}

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  // Overfill this thread's ring by 4x; only the newest kTraceRingSize
  // survive, and the oldest surviving marker is from the final lap.
  constexpr std::uint64_t kMarker = 77100;
  const std::uint32_t total = kTraceRingSize * 4;
  for (std::uint32_t i = 0; i < total; ++i) {
    trace(TraceEvent::kAppendEnqueue, kMarker, i);
  }
  std::uint32_t seen = 0;
  std::uint64_t min_b = ~std::uint64_t{0};
  for (const TraceLine& t : parse(render_trace())) {
    if (t.event == "append_enqueue" && t.a == kMarker) {
      ++seen;
      min_b = std::min(min_b, t.b);
    }
  }
  EXPECT_LE(seen, kTraceRingSize);
  EXPECT_GE(seen, kTraceRingSize / 2);  // dump races nothing here
  EXPECT_GE(min_b, static_cast<std::uint64_t>(total - kTraceRingSize));
}

TEST(FlightRecorder, MergedTraceIsTimeOrderedAcrossThreads) {
  constexpr std::uint64_t kMarker = 77200;
  constexpr int kThreads = 4;
  constexpr std::uint32_t kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        trace(TraceEvent::kSlotDecide, kMarker + t, i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto lines = parse(render_trace());
  std::int64_t prev = 0;
  std::uint32_t matched = 0;
  for (const TraceLine& t : lines) {
    EXPECT_GE(t.ts, prev);  // merged output is globally sorted
    prev = t.ts;
    if (t.event == "slot_decide" && t.a >= kMarker &&
        t.a < kMarker + kThreads) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, kThreads * kPerThread);
}

TEST(FlightRecorder, DumpWritesReasonHeaderAndEvents) {
  char tmpl[] = "/tmp/omega_fr_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  set_trace_dir(dir);
  trace(TraceEvent::kFailoverTicket, 9, 12345);
  const std::string path = dump_trace("unit-test", /*force=*/true);
  set_trace_dir("");  // restore the env/cwd default for later tests
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.rfind(dir + "/omega_trace_", 0), 0u) << path;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  const std::string text = body.str();
  EXPECT_NE(text.find("# reason: unit-test"), std::string::npos);
  EXPECT_NE(text.find("failover_ticket"), std::string::npos);
  EXPECT_NE(text.find("b=12345"), std::string::npos);
  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(FlightRecorder, RateLimitIsPerReason) {
  char tmpl[] = "/tmp/omega_fr_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  set_trace_dir(dir);
  trace(TraceEvent::kWatchdogFire, 1, 2);
  const std::string first = dump_trace("rate-limit", /*force=*/true);
  ASSERT_FALSE(first.empty());
  // Each reason has its own token: right after a dump, an unforced dump
  // for the SAME reason is suppressed, but a different reason (e.g. the
  // failover dump following a watchdog storm) still goes through — and
  // then self-limits too. Forced dumps always go through.
  EXPECT_TRUE(dump_trace("rate-limit").empty());
  const std::string other = dump_trace("rate-limit-other");
  EXPECT_FALSE(other.empty());
  EXPECT_TRUE(dump_trace("rate-limit-other").empty());
  const std::string second = dump_trace("rate-limit", /*force=*/true);
  EXPECT_FALSE(second.empty());
  set_trace_dir("");
  std::remove(first.c_str());
  std::remove(other.c_str());
  std::remove(second.c_str());
  ::rmdir(dir.c_str());
}

TEST(FlightRecorder, ExitedThreadRingsPrunedAfterHarvest) {
  constexpr std::uint64_t kMarker = 77300;
  const auto ring_gauge = [] {
    for (const auto& s : Registry::instance().scrape()) {
      if (s.name == "obs.recorder_rings") return s.value;
    }
    return std::int64_t{-1};
  };
  // Churn a batch of short-lived threads, each writing one event.
  for (int t = 0; t < 8; ++t) {
    std::thread([t] { trace(TraceEvent::kSlotDecide, kMarker, t); }).join();
  }
  const std::int64_t before = ring_gauge();
  ASSERT_GE(before, 8);
  // First harvest still sees every exited thread's tail...
  std::uint32_t seen = 0;
  for (const TraceLine& t : parse(render_trace())) {
    if (t.event == "slot_decide" && t.a == kMarker) ++seen;
  }
  EXPECT_EQ(seen, 8u);
  // ...and prunes their rings, so the gauge drops by the churned count
  // (live threads keep theirs).
  const std::int64_t after = ring_gauge();
  EXPECT_LE(after, before - 8);
}

}  // namespace
}  // namespace omega::obs
