// CommandQueue: FIFO pull order, (client, seq) dedup window semantics,
// completion firing, capacity bounds, abort paths.
#include "smr/command_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace omega::smr {
namespace {

struct Fired {
  AppendOutcome outcome;
  std::uint64_t index;
};

AppendCompletion capture(std::vector<Fired>& into) {
  return [&into](AppendOutcome oc, std::uint64_t idx) {
    into.push_back(Fired{oc, idx});
  };
}

TEST(CommandQueue, PullsInSubmissionOrderAndCommitsFifo) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  ASSERT_EQ(q.submit(1, 0, 100, capture(fired)).outcome,
            AppendOutcome::kAccepted);
  ASSERT_EQ(q.submit(2, 0, 200, capture(fired)).outcome,
            AppendOutcome::kAccepted);
  ASSERT_EQ(q.submit(1, 1, 101, capture(fired)).outcome,
            AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 100u);
  EXPECT_EQ(q.pull(), 200u);
  EXPECT_EQ(q.pull(), 101u);
  EXPECT_EQ(q.pull(), 0u) << "drained";

  const auto r0 = q.commit_front(0);
  EXPECT_EQ(r0.client, 1u);
  EXPECT_EQ(r0.command, 100u);
  const auto r1 = q.commit_front(1);
  EXPECT_EQ(r1.client, 2u);
  const auto r2 = q.commit_front(2);
  EXPECT_EQ(r2.seq, 1u);
  ASSERT_EQ(fired.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fired[i].outcome, AppendOutcome::kCommitted);
    EXPECT_EQ(fired[i].index, i);
  }
}

TEST(CommandQueue, DedupWindowIsTheLatestSeq) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  ASSERT_EQ(q.submit(7, 5, 42, capture(fired)).outcome,
            AppendOutcome::kAccepted);

  // Retry while still pending: attach, do not duplicate.
  std::vector<Fired> retry_fired;
  EXPECT_EQ(q.submit(7, 5, 42, capture(retry_fired)).outcome,
            AppendOutcome::kAccepted);
  EXPECT_EQ(q.pending(), 1u) << "retry must not enqueue a second entry";

  // Older seq: stale.
  EXPECT_EQ(q.submit(7, 4, 41, {}).outcome, AppendOutcome::kStaleSeq);

  EXPECT_EQ(q.pull(), 42u);
  q.commit_front(9);
  ASSERT_EQ(fired.size(), 1u);
  ASSERT_EQ(retry_fired.size(), 1u);
  EXPECT_EQ(retry_fired[0].index, 9u) << "both waiters learn the index";

  // Retry after commit: immediate answer with the original index.
  const auto dup = q.submit(7, 5, 42, {});
  EXPECT_EQ(dup.outcome, AppendOutcome::kCommitted);
  EXPECT_EQ(dup.index, 9u);

  // The next seq proceeds normally.
  EXPECT_EQ(q.submit(7, 6, 43, {}).outcome, AppendOutcome::kAccepted);
}

TEST(CommandQueue, RetryWithDifferentCommandIsRejectedNotFatal) {
  // This arrives over the network (a buggy client), so it must be an
  // answer, never a throw on the serving thread.
  CommandQueue q(16);
  ASSERT_EQ(q.submit(3, 1, 10, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.submit(3, 1, 11, {}).outcome, AppendOutcome::kBadCommand);
  // The original entry is untouched.
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.pull(), 10u);
}

TEST(CommandQueue, BoundsPendingIntake) {
  CommandQueue q(2);
  EXPECT_EQ(q.submit(1, 0, 1, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.submit(2, 0, 2, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.submit(3, 0, 3, {}).outcome, AppendOutcome::kQueueFull);
  // Pulling frees a slot (the bound is on *pending*, not in-flight).
  EXPECT_EQ(q.pull(), 1u);
  EXPECT_EQ(q.submit(3, 0, 3, {}).outcome, AppendOutcome::kAccepted);
}

TEST(CommandQueue, AbortFiresEveryWaiter) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  q.submit(1, 0, 1, capture(fired));
  q.submit(2, 0, 2, capture(fired));
  ASSERT_EQ(q.pull(), 1u);  // one in flight, one pending
  q.abort_pending(AppendOutcome::kLogFull);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].outcome, AppendOutcome::kLogFull);
  q.abort_all(AppendOutcome::kAborted);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].outcome, AppendOutcome::kAborted);
  EXPECT_EQ(q.pending(), 0u);
  // The in-flight entry survives (its slot may still decide under a
  // racing sweep) but its late commit answers nobody.
  EXPECT_EQ(q.in_flight(), 1u);
  const auto rec = q.commit_front(0);
  EXPECT_EQ(rec.command, 1u);
  ASSERT_EQ(fired.size(), 2u) << "aborted waiters must not fire again";
}

}  // namespace
}  // namespace omega::smr
