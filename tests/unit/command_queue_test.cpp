// CommandQueue: FIFO pull order, (client, seq) dedup window semantics,
// completion firing, capacity bounds, abort paths.
#include "smr/command_queue.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/check.h"

namespace omega::smr {
namespace {

struct Fired {
  AppendOutcome outcome;
  std::uint64_t index;
};

AppendCompletion capture(std::vector<Fired>& into) {
  return [&into](AppendOutcome oc, std::uint64_t idx) {
    into.push_back(Fired{oc, idx});
  };
}

TEST(CommandQueue, PullsInSubmissionOrderAndCommitsFifo) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  ASSERT_EQ(q.submit(1, 0, 100, capture(fired)).outcome,
            AppendOutcome::kAccepted);
  ASSERT_EQ(q.submit(2, 0, 200, capture(fired)).outcome,
            AppendOutcome::kAccepted);
  ASSERT_EQ(q.submit(1, 1, 101, capture(fired)).outcome,
            AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 100u);
  EXPECT_EQ(q.pull(), 200u);
  EXPECT_EQ(q.pull(), 101u);
  EXPECT_EQ(q.pull(), 0u) << "drained";

  const auto r0 = q.commit_front(0);
  EXPECT_EQ(r0.client, 1u);
  EXPECT_EQ(r0.command, 100u);
  const auto r1 = q.commit_front(1);
  EXPECT_EQ(r1.client, 2u);
  const auto r2 = q.commit_front(2);
  EXPECT_EQ(r2.seq, 1u);
  ASSERT_EQ(fired.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(fired[i].outcome, AppendOutcome::kCommitted);
    EXPECT_EQ(fired[i].index, i);
  }
}

TEST(CommandQueue, DedupWindowIsTheLatestSeq) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  ASSERT_EQ(q.submit(7, 5, 42, capture(fired)).outcome,
            AppendOutcome::kAccepted);

  // Retry while still pending: attach, do not duplicate.
  std::vector<Fired> retry_fired;
  EXPECT_EQ(q.submit(7, 5, 42, capture(retry_fired)).outcome,
            AppendOutcome::kAccepted);
  EXPECT_EQ(q.pending(), 1u) << "retry must not enqueue a second entry";

  // Older seq: stale.
  EXPECT_EQ(q.submit(7, 4, 41, {}).outcome, AppendOutcome::kStaleSeq);

  EXPECT_EQ(q.pull(), 42u);
  q.commit_front(9);
  ASSERT_EQ(fired.size(), 1u);
  ASSERT_EQ(retry_fired.size(), 1u);
  EXPECT_EQ(retry_fired[0].index, 9u) << "both waiters learn the index";

  // Retry after commit: immediate answer with the original index.
  const auto dup = q.submit(7, 5, 42, {});
  EXPECT_EQ(dup.outcome, AppendOutcome::kCommitted);
  EXPECT_EQ(dup.index, 9u);

  // The next seq proceeds normally.
  EXPECT_EQ(q.submit(7, 6, 43, {}).outcome, AppendOutcome::kAccepted);
}

TEST(CommandQueue, RetryWithDifferentCommandIsRejectedNotFatal) {
  // This arrives over the network (a buggy client), so it must be an
  // answer, never a throw on the serving thread.
  CommandQueue q(16);
  ASSERT_EQ(q.submit(3, 1, 10, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.submit(3, 1, 11, {}).outcome, AppendOutcome::kBadCommand);
  // The original entry is untouched.
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.pull(), 10u);
}

TEST(CommandQueue, BoundsPendingIntake) {
  CommandQueue q(2);
  EXPECT_EQ(q.submit(1, 0, 1, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.submit(2, 0, 2, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.submit(3, 0, 3, {}).outcome, AppendOutcome::kQueueFull);
  // Pulling frees a slot (the bound is on *pending*, not in-flight).
  EXPECT_EQ(q.pull(), 1u);
  EXPECT_EQ(q.submit(3, 0, 3, {}).outcome, AppendOutcome::kAccepted);
}

TEST(CommandQueue, AbortFiresEveryWaiter) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  q.submit(1, 0, 1, capture(fired));
  q.submit(2, 0, 2, capture(fired));
  ASSERT_EQ(q.pull(), 1u);  // one in flight, one pending
  q.abort_pending(AppendOutcome::kLogFull);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].outcome, AppendOutcome::kLogFull);
  q.abort_all(AppendOutcome::kAborted);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].outcome, AppendOutcome::kAborted);
  EXPECT_EQ(q.pending(), 0u);
  // The in-flight entry survives (its slot may still decide under a
  // racing sweep) but its late commit answers nobody.
  EXPECT_EQ(q.in_flight(), 1u);
  const auto rec = q.commit_front(0);
  EXPECT_EQ(rec.command, 1u);
  ASSERT_EQ(fired.size(), 2u) << "aborted waiters must not fire again";
}

TEST(CommandQueue, PullBatchMovesFifoAndCommitBatchAcksEveryEntry) {
  CommandQueue q(16);
  std::vector<Fired> fired;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(q.submit(/*client=*/10 + i, /*seq=*/0, /*command=*/50 + i,
                       capture(fired))
                  .outcome,
              AppendOutcome::kAccepted);
  }
  std::vector<std::uint64_t> batch;
  EXPECT_EQ(q.pull_batch(3, batch), 3u);
  EXPECT_EQ(batch, (std::vector<std::uint64_t>{50, 51, 52}));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(q.in_flight(), 3u);
  // A short queue seals a short batch.
  EXPECT_EQ(q.pull_batch(8, batch), 2u);
  EXPECT_EQ(batch.size(), 5u) << "pull_batch appends, not replaces";
  EXPECT_EQ(q.pull_batch(8, batch), 0u) << "drained";

  std::vector<CommandQueue::CommitRecord> recs;
  q.commit_batch(/*first_index=*/100, /*count=*/5, recs);
  ASSERT_EQ(recs.size(), 5u);
  ASSERT_EQ(fired.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recs[i].command, 50 + i) << "records in FIFO order";
    EXPECT_EQ(fired[i].outcome, AppendOutcome::kCommitted);
    EXPECT_EQ(fired[i].index, 100 + i) << "per-entry indexes are dense";
  }
  // The sessions recorded their outcomes: duplicates answer immediately.
  const auto dup = q.submit(12, 0, 52, {});
  EXPECT_EQ(dup.outcome, AppendOutcome::kCommitted);
  EXPECT_EQ(dup.index, 102u);
}

TEST(CommandQueue, EvictsIdleSessionsButNeverBusyOnes) {
  CommandQueue q(16, /*session_ttl_us=*/1000);
  // Mid-stream seqs need a session first (SESSION_OPEN handshake).
  EXPECT_EQ(q.open_session(1), 1000);
  // Client 1 commits and goes idle; client 2 stays queued.
  ASSERT_EQ(q.submit(1, 7, 11, {}).outcome, AppendOutcome::kAccepted);
  ASSERT_EQ(q.submit(2, 1, 22, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 11u);
  q.commit_front(0);
  EXPECT_EQ(q.stats().sessions, 2u);

  q.evict_idle_sessions(/*now_us=*/5000);
  const auto s = q.stats();
  EXPECT_EQ(s.evicted, 1u) << "idle committed session expires";
  EXPECT_EQ(s.sessions, 1u) << "the busy session must survive";
  // Client 2's dedup window is intact...
  EXPECT_EQ(q.submit(2, 0, 9, {}).outcome, AppendOutcome::kStaleSeq);
  // ...while client 1's is gone — and the loss is EXPLICIT: the late
  // retry answers kSessionEvicted instead of silently double-committing.
  EXPECT_EQ(q.submit(1, 7, 11, {}).outcome, AppendOutcome::kSessionEvicted);
  // Re-opening acknowledges the lost window and restores service.
  EXPECT_EQ(q.open_session(1), 1000);
  EXPECT_EQ(q.submit(1, 7, 11, {}).outcome, AppendOutcome::kAccepted);
}

TEST(CommandQueue, SessionEvictedOnlyGatesMidStreamSeqs) {
  CommandQueue q(16, /*session_ttl_us=*/1000);
  // Fresh clients starting at seq 1 never need the handshake...
  EXPECT_EQ(q.submit(9, 1, 5, {}).outcome, AppendOutcome::kAccepted);
  // ...and TTL-free queues never gate at all (no eviction to surface).
  CommandQueue forever(16, /*session_ttl_us=*/0);
  EXPECT_EQ(forever.submit(9, 42, 5, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(forever.open_session(10), 0) << "TTL 0 reported as 'never'";
}

TEST(CommandQueue, EvictionScansAreRateLimited) {
  CommandQueue q(16, /*session_ttl_us=*/1000);
  ASSERT_EQ(q.submit(1, 0, 5, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 5u);
  q.commit_front(0);
  q.evict_idle_sessions(2000);  // scans (and evicts client 1)
  EXPECT_EQ(q.stats().evicted, 1u);
  ASSERT_EQ(q.submit(3, 0, 6, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 6u);
  q.commit_front(1);
  // Within a quarter TTL of the last scan: no pass is made, even though
  // client 3 is now idle and (by stamp age) expired.
  q.evict_idle_sessions(2100);
  EXPECT_EQ(q.stats().sessions, 1u);
  // Past the rate limit the scan runs.
  q.evict_idle_sessions(10000);
  EXPECT_EQ(q.stats().sessions, 0u);
  EXPECT_EQ(q.stats().evicted, 2u);
}

TEST(CommandQueue, CommitRefreshesTheSessionStamp) {
  // Regression: a session created against a stale clock (submit stamps
  // with the *previous* sweep's time — 0 before the first sweep) must not
  // surface from its commit with the retry window already expired. The
  // commit itself restamps the session.
  CommandQueue q(16, /*session_ttl_us=*/1000);
  q.evict_idle_sessions(5000);  // sweep clock advances to 5000
  ASSERT_EQ(q.submit(1, 0, 5, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 5u);
  q.evict_idle_sessions(5400);  // busy: protected; clock now 5400
  q.commit_front(0);            // stamps the session with 5400
  q.evict_idle_sessions(6100);  // idle 700us < ttl: must survive
  EXPECT_EQ(q.stats().sessions, 1u)
      << "the TTL must run from the commit, not the submission";
  const auto dup = q.submit(1, 0, 5, {});
  EXPECT_EQ(dup.outcome, AppendOutcome::kCommitted) << "retry window intact";
  q.evict_idle_sessions(9000);  // idle past the ttl: now it goes
  EXPECT_EQ(q.stats().sessions, 0u);
}

TEST(CommandQueue, ZeroTtlNeverEvicts) {
  CommandQueue q(16);  // ttl 0 = sessions live forever
  ASSERT_EQ(q.submit(1, 0, 5, {}).outcome, AppendOutcome::kAccepted);
  EXPECT_EQ(q.pull(), 5u);
  q.commit_front(0);
  q.evict_idle_sessions(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(q.stats().sessions, 1u);
  EXPECT_EQ(q.stats().evicted, 0u);
}

}  // namespace
}  // namespace omega::smr
