#include "registers/memory.h"

#include <gtest/gtest.h>

namespace omega {
namespace {

struct Fixture {
  // Group ids are declared before `layout` so that make_layout's out-params
  // are not clobbered by later member initialization.
  GroupId owned = 0;
  GroupId shared = 0;
  Layout layout;
  SimMemory mem;

  static Layout make_layout(std::uint32_t n, GroupId& owned, GroupId& shared) {
    LayoutBuilder b;
    owned = b.add_array("OWNED", n, OwnerRule::kRowOwner, true);
    shared = b.add_array("MW", n, OwnerRule::kAny, false);
    return b.build();
  }

  explicit Fixture(std::uint32_t n = 4)
      : layout(make_layout(n, owned, shared)), mem(layout, n) {}
};

TEST(Memory, ReadBackAfterWrite) {
  Fixture f;
  const Cell c = f.mem.layout().cell(f.owned, 1);
  f.mem.write(1, c, 42);
  EXPECT_EQ(f.mem.read(0, c), 42u);
  EXPECT_EQ(f.mem.read(3, c), 42u);
}

TEST(Memory, InitiallyZero) {
  Fixture f;
  EXPECT_EQ(f.mem.read(0, f.mem.layout().cell(f.owned, 2)), 0u);
}

TEST(Memory, OwnershipEnforced1WnR) {
  Fixture f;
  const Cell c = f.mem.layout().cell(f.owned, 1);
  EXPECT_THROW(f.mem.write(0, c, 1), InvariantViolation);
  EXPECT_NO_THROW(f.mem.write(1, c, 1));
}

TEST(Memory, AnyOwnerAcceptsAllWriters) {
  Fixture f;
  const Cell c = f.mem.layout().cell(f.shared, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_NO_THROW(f.mem.write(p, c, p));
  }
  EXPECT_EQ(f.mem.read(0, c), 3u);
}

TEST(Memory, RejectsUnknownProcess) {
  Fixture f;
  const Cell c = f.mem.layout().cell(f.shared, 0);
  EXPECT_THROW(f.mem.read(99, c), InvariantViolation);
  EXPECT_THROW(f.mem.write(99, c, 0), InvariantViolation);
}

TEST(Memory, RejectsOutOfRangeCell) {
  Fixture f;
  EXPECT_THROW(f.mem.read(0, Cell{10000}), InvariantViolation);
}

TEST(Memory, PokePeekBypassInstrumentation) {
  Fixture f;
  const Cell c = f.mem.layout().cell(f.owned, 0);
  f.mem.poke(c, 7);
  EXPECT_EQ(f.mem.peek(c), 7u);
  EXPECT_EQ(f.mem.instr().writes_by(0), 0u);
  EXPECT_EQ(f.mem.instr().reads_by(0), 0u);
}

TEST(Memory, InstrumentationCountsAccesses) {
  Fixture f;
  const Cell c = f.mem.layout().cell(f.owned, 2);
  f.mem.write(2, c, 5);
  f.mem.write(2, c, 6);
  f.mem.read(1, c);
  EXPECT_EQ(f.mem.instr().writes_by(2), 2u);
  EXPECT_EQ(f.mem.instr().reads_by(1), 1u);
  EXPECT_EQ(f.mem.instr().writes_to(c), 2u);
  EXPECT_EQ(f.mem.instr().high_water(c), 6u);
}

TEST(Memory, ClockStampsLastWrite) {
  Fixture f;
  SimTime t = 100;
  f.mem.set_clock([&t] { return t; });
  const Cell c = f.mem.layout().cell(f.owned, 0);
  f.mem.write(0, c, 1);
  EXPECT_EQ(f.mem.instr().last_write_by(0), 100);
  t = 250;
  f.mem.write(0, c, 2);
  EXPECT_EQ(f.mem.instr().last_write_by(0), 250);
}

TEST(Memory, DefaultAccessCostIsZero) {
  Fixture f;
  EXPECT_EQ(f.mem.access_cost(f.mem.layout().cell(f.owned, 0), true), 0);
}

}  // namespace
}  // namespace omega
