// LogPump batching edges: FIFO expansion of batched slots, short batches
// when the supplier runs dry mid-batch, window-full backpressure, the
// descriptor/checksum codec, and B=1 equivalence with the legacy
// single-command pump (same commits, same memory trace).
#include "consensus/log_pump.h"

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "sim/scenario.h"

namespace omega {
namespace {

/// Scripted supplier: hands out a fixed command list and records how many
/// commands each pull() granted.
class VecSource final : public BatchSource {
 public:
  explicit VecSource(std::vector<std::uint64_t> cmds)
      : q_(cmds.begin(), cmds.end()) {}

  std::uint32_t pull(std::uint32_t max, std::vector<std::uint64_t>& out,
                     std::uint64_t& ticket,
                     std::vector<std::uint64_t>& traces) override {
    ticket = ++next_ticket_;
    std::uint32_t granted = 0;
    while (granted < max && !q_.empty()) {
      out.push_back(q_.front());
      traces.push_back(q_.front() + kTraceBias);
      q_.pop_front();
      ++granted;
    }
    if (granted > 0) grants_.push_back(granted);
    return granted;
  }

  /// Scripted trace id per command: command + kTraceBias, so tests can
  /// assert the id survives the spill ring alongside its command.
  static constexpr std::uint64_t kTraceBias = 0x7700000000000000ULL;

  std::size_t left() const { return q_.size(); }
  const std::vector<std::uint32_t>& grants() const { return grants_; }

 private:
  std::deque<std::uint64_t> q_;
  std::vector<std::uint32_t> grants_;
  std::uint64_t next_ticket_ = 0;
};

/// One sim-backed pump: scenario, log, optional batch ring, pump.
struct Rig {
  Rig(std::uint32_t n, std::uint32_t capacity, std::uint32_t window,
      std::uint32_t max_batch, std::uint64_t seed = 5)
      : log(n, capacity) {
    ScenarioConfig cfg;
    cfg.n = n;
    cfg.world = World::kAwb;
    cfg.seed = seed;
    if (max_batch > 1) buffer.emplace("T", /*banks=*/1, window, max_batch);
    cfg.extra_registers = [this](LayoutBuilder& b) {
      log.declare(b);
      if (buffer.has_value()) buffer->declare(b);
    };
    driver = make_scenario(cfg);
    log.bind(driver->memory().layout());
    if (buffer.has_value()) buffer->bind(driver->memory().layout());
    host = std::make_unique<SimPumpHost>(*driver);
    pump = std::make_unique<LogPump>(
        log, *host, window,
        LogPump::BatchPolicy{max_batch,
                             buffer.has_value() ? &*buffer : nullptr});
  }

  /// Ticks and runs the simulation until the pump stops making progress
  /// (source dry, nothing in flight) or `deadline` passes.
  std::vector<LogPump::Commit> drain(BatchSource& src,
                                     SimTime deadline = 5000000) {
    std::vector<LogPump::Commit> commits;
    for (;;) {
      const std::uint32_t started_before = pump->started();
      pump->tick(src, commits);
      if (pump->in_flight() == 0 && pump->started() == started_before) break;
      if (driver->now() >= deadline) break;
      driver->run_for(2000);
    }
    return commits;
  }

  ReplicatedLog log;
  std::optional<BatchBuffer> buffer;
  std::unique_ptr<SimDriver> driver;
  std::unique_ptr<SimPumpHost> host;
  std::unique_ptr<LogPump> pump;
};

std::vector<std::uint64_t> values_of(
    const std::vector<LogPump::Commit>& commits) {
  std::vector<std::uint64_t> v;
  for (const auto& c : commits) v.push_back(c.value);
  return v;
}

TEST(LogPump, BatchedSlotsExpandToFifoCommits) {
  Rig rig(/*n=*/3, /*capacity=*/16, /*window=*/4, /*max_batch=*/4);
  std::vector<std::uint64_t> cmds;
  for (std::uint64_t i = 0; i < 10; ++i) cmds.push_back(101 + i);
  VecSource src(cmds);
  const auto commits = rig.drain(src);
  // Everything placed, in submission order, across ceil(10/4) = 3 slots:
  // batching multiplies commands per slot without reordering them.
  EXPECT_EQ(values_of(commits), cmds);
  EXPECT_EQ(rig.pump->started(), 3u);
  EXPECT_EQ(rig.pump->committed(), 3u);
  // Slot numbers are nondecreasing and contiguous batches share a slot.
  for (std::size_t i = 1; i < commits.size(); ++i) {
    EXPECT_GE(commits[i].slot, commits[i - 1].slot);
  }
}

TEST(LogPump, EmptySupplierMidBatchSealsShort) {
  Rig rig(3, 16, /*window=*/2, /*max_batch=*/8);
  VecSource src({7, 8, 9});
  const auto commits = rig.drain(src);
  // A supplier that runs dry mid-batch seals what it has: one slot, three
  // commands, no waiting for a full batch (adaptive flush).
  EXPECT_EQ(values_of(commits), (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_EQ(rig.pump->started(), 1u);
  ASSERT_EQ(src.grants().size(), 1u);
  EXPECT_EQ(src.grants()[0], 3u);
}

TEST(LogPump, WindowFullIsBackpressureNotLoss) {
  Rig rig(3, 16, /*window=*/1, /*max_batch=*/2);
  std::vector<std::uint64_t> cmds{21, 22, 23, 24, 25, 26};
  VecSource src(cmds);
  std::vector<LogPump::Commit> first_tick;
  rig.pump->tick(src, first_tick);
  // One slot in flight: exactly one batch was pulled; the rest stays with
  // the supplier until the window frees.
  EXPECT_EQ(rig.pump->in_flight(), 1u);
  EXPECT_EQ(src.left(), 4u);
  const auto rest = rig.drain(src);
  std::vector<std::uint64_t> all = values_of(first_tick);
  for (auto v : values_of(rest)) all.push_back(v);
  EXPECT_EQ(all, cmds);
  EXPECT_EQ(rig.pump->started(), 3u) << "two commands per slot";
}

TEST(LogPump, DescriptorCodecRoundTripsAndValidates) {
  for (std::uint32_t count : {1u, 2u, 64u, 127u}) {
    for (ProcessId sealer : {ProcessId{0}, ProcessId{5}, ProcessId{63}}) {
      const std::uint64_t d = encode_batch_descriptor(count, sealer);
      EXPECT_GE(d, 1u);
      EXPECT_LT(d, kLogNoOp) << "descriptors must stay proposable";
      std::uint32_t count_out = 0;
      ProcessId sealer_out = kNoProcess;
      decode_batch_descriptor(d, count_out, sealer_out);
      EXPECT_EQ(count_out, count);
      EXPECT_EQ(sealer_out, sealer);
    }
  }
  std::uint32_t c = 0;
  ProcessId s = 0;
  EXPECT_THROW(decode_batch_descriptor(0, c, s), std::exception)
      << "count 0 is malformed";
  EXPECT_THROW(encode_batch_descriptor(128, 0), std::exception)
      << "count above kMaxBatchCommands must be rejected";
  EXPECT_THROW(encode_batch_descriptor(1, 64), std::exception)
      << "sealer beyond the 6-bit field must be rejected";

  // The checksum is order-sensitive: a reordered buffer is caught.
  const std::uint64_t a[2] = {11, 12};
  const std::uint64_t b[2] = {12, 11};
  EXPECT_NE(batch_checksum(a, 2), batch_checksum(b, 2));

  // Seal cells: slot stamp + checksum round-trip; 0 means "never sealed".
  EXPECT_EQ(seal_slot(0), kNoSealedSlot);
  const std::uint64_t seal = pack_seal(/*slot=*/7, /*checksum=*/0xDEADBEEF);
  EXPECT_EQ(seal_slot(seal), 7u);
  EXPECT_EQ(seal_checksum(seal), 0xDEADBEEFu);
}

TEST(LogPump, BatchOfOneEqualsLegacySingleCommandPump) {
  // Twin scenarios with identical seeds: one pumped through the legacy
  // single-command supplier, one through a BatchSource with max_batch=1.
  // Equivalence must hold down to the memory image — same slots, same
  // decisions, same register traffic (no batch ring is even declared).
  const std::vector<std::uint64_t> cmds{301, 302, 303, 304, 305};
  Rig legacy(3, 16, /*window=*/2, /*max_batch=*/1, /*seed=*/9);
  Rig batched(3, 16, /*window=*/2, /*max_batch=*/1, /*seed=*/9);

  std::size_t next = 0;
  const auto supply = [&]() -> std::uint64_t {
    return next < cmds.size() ? cmds[next++] : kNoCommand;
  };
  std::vector<LogPump::Commit> legacy_commits;
  for (;;) {
    const std::uint32_t before = legacy.pump->started();
    legacy.pump->tick(supply, legacy_commits);
    if (legacy.pump->in_flight() == 0 && legacy.pump->started() == before) {
      break;
    }
    legacy.driver->run_for(2000);
  }

  VecSource src(cmds);
  const auto batched_commits = batched.drain(src);

  ASSERT_EQ(legacy_commits.size(), batched_commits.size());
  for (std::size_t i = 0; i < legacy_commits.size(); ++i) {
    EXPECT_EQ(legacy_commits[i].slot, batched_commits[i].slot);
    EXPECT_EQ(legacy_commits[i].value, batched_commits[i].value);
  }
  // Byte-for-byte: the full register image of both runs is identical.
  const auto& ml = legacy.driver->memory();
  const auto& mb = batched.driver->memory();
  ASSERT_EQ(ml.layout().size(), mb.layout().size());
  for (std::uint32_t i = 0; i < ml.layout().size(); ++i) {
    ASSERT_EQ(ml.peek(Cell{i}), mb.peek(Cell{i}))
        << "memory diverges at " << ml.layout().cell_name(Cell{i});
  }
}

TEST(LogPump, SingleCommandTickRejectsBatchedPump) {
  Rig rig(3, 16, /*window=*/2, /*max_batch=*/4);
  std::vector<LogPump::Commit> commits;
  EXPECT_THROW(rig.pump->tick([] { return kNoCommand; }, commits),
               std::exception);
}

}  // namespace
}  // namespace omega
