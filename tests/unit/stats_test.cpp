#include "common/stats.h"

#include "common/check.h"

#include <gtest/gtest.h>

#include <cmath>

namespace omega {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-10.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -10.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
  EXPECT_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Percentile, RejectsBadQuantile) {
  EXPECT_THROW(percentile({1.0}, 1.5), InvariantViolation);
}

TEST(LogHistogram, BucketsByPowersOfTwo) {
  LogHistogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket_count(0), 1u);  // {0}
  EXPECT_EQ(h.bucket_count(1), 1u);  // [1,2)
  EXPECT_EQ(h.bucket_count(2), 2u);  // [2,4)
  EXPECT_EQ(h.bucket_count(3), 1u);  // [4,8)
}

TEST(LogHistogram, LargeValuesClampToLastBucket) {
  LogHistogram h(8);
  h.add(~std::uint64_t{0});
  EXPECT_EQ(h.bucket_count(7), 1u);
}

TEST(LogHistogram, ApproxQuantile) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.add(1);   // bucket [1,2)
  for (int i = 0; i < 10; ++i) h.add(100); // bucket [64,128)
  EXPECT_LE(h.approx_quantile(0.5), 2u);
  EXPECT_GE(h.approx_quantile(0.99), 100u);
}

TEST(LogHistogram, RenderShowsNonEmptyBuckets) {
  LogHistogram h;
  h.add(3);
  const std::string r = h.render();
  EXPECT_NE(r.find("[2, 4)"), std::string::npos);
}

}  // namespace
}  // namespace omega
