// Trace stitching (obs/trace_stitch.h): cross-node join by trace id,
// wall-clock placement via per-node realtime offsets, first/last batch
// tagging, hop lookups, and the rendered timeline.
#include "obs/trace_stitch.h"

#include <gtest/gtest.h>

#include <vector>

namespace omega::obs {
namespace {

TraceRecord rec(std::uint64_t ts, TraceEvent ev, std::uint64_t lo,
                std::uint64_t hi, std::uint32_t thread = 0) {
  TraceRecord r;
  r.ts_ns = ts;
  r.thread = thread;
  r.ev = ev;
  r.a = 1;
  r.b = 2;
  r.trace_lo = lo;
  r.trace_hi = hi;
  return r;
}

TEST(TraceStitch, JoinsAcrossNodesOnOneWallClock) {
  // Node 0 (leader) and node 1 (follower) run on different steady
  // clocks; the per-node realtime offset places both on one wall axis.
  NodeTrace leader;
  leader.node = 0;
  leader.realtime_offset_ns = 1000000;
  leader.records.push_back(rec(100, TraceEvent::kAppendEnqueue, 0xA, 0));
  leader.records.push_back(rec(300, TraceEvent::kBatchSeal, 0xA, 0xA));
  NodeTrace follower;
  follower.node = 1;
  follower.realtime_offset_ns = 500000;  // steady clock 500us ahead
  follower.records.push_back(rec(500900, TraceEvent::kBatchApply, 0xA, 0xA));

  const auto traces = stitch({leader, follower});
  ASSERT_EQ(traces.size(), 1u);
  const StitchedTrace& t = traces[0];
  EXPECT_EQ(t.trace_id, 0xAu);
  ASSERT_EQ(t.hops.size(), 3u);
  // Wall order: enqueue (1000100), seal (1000300), follower apply
  // (1000900) — the apply's raw steady ts is far earlier than either.
  EXPECT_EQ(t.hops[0].ev, TraceEvent::kAppendEnqueue);
  EXPECT_EQ(t.hops[0].wall_ns, 1000100);
  EXPECT_EQ(t.hops[1].ev, TraceEvent::kBatchSeal);
  EXPECT_EQ(t.hops[2].ev, TraceEvent::kBatchApply);
  EXPECT_EQ(t.hops[2].node, 1u);
  EXPECT_EQ(t.hops[2].wall_ns, 1000900);

  EXPECT_EQ(hop_ns(t, TraceEvent::kAppendEnqueue, TraceEvent::kBatchSeal),
            200);
  EXPECT_EQ(hop_ns(t, TraceEvent::kAppendEnqueue, TraceEvent::kBatchApply,
                   /*from_node=*/0, /*to_node=*/1),
            800);
  EXPECT_EQ(hop_ns(t, TraceEvent::kBatchSeal, TraceEvent::kSlotDecide), -1)
      << "a missing hop reports -1, not a bogus delta";
}

TEST(TraceStitch, BatchEventsJoinFirstAndLastId) {
  // A sealed batch tags trace_lo = first id, trace_hi = last id: both
  // requests join the seal, a mid-batch id does not.
  NodeTrace n;
  n.node = 0;
  n.records.push_back(rec(10, TraceEvent::kAppendEnqueue, 0x1, 0));
  n.records.push_back(rec(11, TraceEvent::kAppendEnqueue, 0x2, 0));
  n.records.push_back(rec(12, TraceEvent::kAppendEnqueue, 0x3, 0));
  n.records.push_back(rec(20, TraceEvent::kBatchSeal, 0x1, 0x3));
  const auto traces = stitch({n});
  ASSERT_EQ(traces.size(), 3u);
  for (const auto& t : traces) {
    const bool edge = t.trace_id == 0x1 || t.trace_id == 0x3;
    EXPECT_EQ(find_hop(t, TraceEvent::kBatchSeal) != nullptr, edge)
        << "trace " << t.trace_id;
    EXPECT_NE(find_hop(t, TraceEvent::kAppendEnqueue), nullptr);
  }
}

TEST(TraceStitch, UntracedRecordsAndIdZeroAreSkipped) {
  NodeTrace n;
  n.node = 0;
  n.records.push_back(rec(10, TraceEvent::kAckFlush, 0, 0));
  n.records.push_back(rec(11, TraceEvent::kEpochChange, 0, 0));
  EXPECT_TRUE(stitch({n}).empty());
}

TEST(TraceStitch, TracesSortByFirstHopAndFindHopFiltersByNode) {
  NodeTrace a;
  a.node = 0;
  a.records.push_back(rec(200, TraceEvent::kAppendEnqueue, 0xB, 0));
  a.records.push_back(rec(100, TraceEvent::kAppendEnqueue, 0xC, 0));
  NodeTrace b;
  b.node = 1;
  b.records.push_back(rec(300, TraceEvent::kBatchApply, 0xB, 0xB));
  const auto traces = stitch({a, b});
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].trace_id, 0xCu) << "earliest first hop sorts first";
  EXPECT_EQ(traces[1].trace_id, 0xBu);
  EXPECT_EQ(find_hop(traces[1], TraceEvent::kBatchApply, /*node=*/0),
            nullptr);
  const TraceHop* h = find_hop(traces[1], TraceEvent::kBatchApply, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->node, 1u);
}

TEST(TraceStitch, RenderNamesEventsAndOffsetsFromFirstHop) {
  NodeTrace n;
  n.node = 2;
  n.realtime_offset_ns = 0;
  n.records.push_back(rec(1000, TraceEvent::kAppendEnqueue, 0xF1, 0, 7));
  n.records.push_back(rec(4500, TraceEvent::kBatchSeal, 0xF1, 0xF1, 8));
  const std::string out = render_stitched(stitch({n}));
  EXPECT_NE(out.find("00000000000000f1"), std::string::npos);
  EXPECT_NE(out.find("append_enqueue"), std::string::npos);
  EXPECT_NE(out.find("batch_seal"), std::string::npos);
  EXPECT_NE(out.find("n2"), std::string::npos);
  EXPECT_NE(out.find("t7"), std::string::npos);
  EXPECT_NE(out.find("+       0us"), std::string::npos);
}

}  // namespace
}  // namespace omega::obs
