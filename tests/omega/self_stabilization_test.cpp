// Footnote 7 of the paper: "the algorithm is self-stabilizing with respect
// to the shared variables. Whatever their initial values, it converges in a
// finite number of steps towards a common leader, as soon as the additional
// assumption is satisfied." Swept here across algorithms, garbage magnitudes
// and seeds (every register is poked with arbitrary values *before* the
// processes initialize their local mirrors from memory).
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace omega {
namespace {

struct StabCase {
  AlgoKind algo;
  std::uint64_t garbage_max;
  std::uint64_t seed;
};

class SelfStabilizationTest : public testing::TestWithParam<StabCase> {};

TEST_P(SelfStabilizationTest, ConvergesFromArbitraryRegisterContents) {
  const StabCase& sc = GetParam();
  ScenarioConfig cfg;
  cfg.algo = sc.algo;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.garbage_init = true;
  cfg.garbage_max = sc.garbage_max;
  cfg.seed = sc.seed;
  // Large garbage in SUSPICIONS inflates initial timeouts (timer parameter =
  // max row + 1), so give those runs a proportionally longer horizon: the
  // first monitor pass may only fire after ~garbage_max timeout units.
  const SimTime horizon =
      500000 + static_cast<SimTime>(sc.garbage_max) * 64 * 5;
  auto d = make_scenario(cfg);
  d->run_until(horizon);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged) << cfg.label();
  EXPECT_TRUE(d->plan().is_correct(rep.leader));
}

std::vector<StabCase> stab_grid() {
  std::vector<StabCase> out;
  for (AlgoKind algo : {AlgoKind::kWriteEfficient, AlgoKind::kBounded,
                        AlgoKind::kNwnr, AlgoKind::kStepClock,
                        AlgoKind::kEvSync}) {
    for (std::uint64_t garbage : {1ull, 64ull, 1024ull}) {
      for (std::uint64_t seed : {2ull, 5ull}) {
        out.push_back({algo, garbage, seed});
      }
    }
  }
  return out;
}

std::string stab_name(const testing::TestParamInfo<StabCase>& info) {
  std::string s = std::string(algo_name(info.param.algo)) + "_g" +
                  std::to_string(info.param.garbage_max) + "_s" +
                  std::to_string(info.param.seed);
  for (char& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Grid, SelfStabilizationTest,
                         testing::ValuesIn(stab_grid()), stab_name);

TEST(SelfStabilization, GarbageInitActuallyPokesRegisters) {
  // Guard against the sweep silently testing clean memory.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.garbage_init = true;
  cfg.garbage_max = 1000;
  cfg.seed = 1;
  auto d = make_scenario(cfg);
  std::uint64_t nonzero = 0;
  for (std::uint32_t i = 0; i < d->memory().layout().size(); ++i) {
    nonzero += d->memory().peek(Cell{i}) != 0 ? 1 : 0;
  }
  EXPECT_GT(nonzero, d->memory().layout().size() / 2);
}

TEST(SelfStabilization, MirrorsSeededFromGarbage) {
  // A process's first own-register write continues from the garbage value,
  // not from zero — the local mirrors really were initialized from memory.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 2;
  cfg.world = World::kSync;
  cfg.garbage_init = true;
  cfg.garbage_max = 500;
  cfg.seed = 9;
  auto d = make_scenario(cfg);
  GroupId prog = 0;
  ASSERT_TRUE(d->memory().layout().find_group("PROGRESS", prog));
  const Cell c0 = d->memory().layout().cell(prog, 0);
  const std::uint64_t initial = d->memory().peek(c0);
  d->run_until(5000);
  const std::uint64_t later = d->memory().peek(c0);
  if (later != initial) {  // p0 became leader and wrote
    EXPECT_GT(later, initial) << "counter must continue past the garbage";
  }
}

}  // namespace
}  // namespace omega
