// Line-level unit tests of the algorithm bodies: the task coroutines are
// driven by hand against a SimMemory, one operation at a time, so each
// branch of the paper's pseudocode (Figures 2 and 5) is exercised and
// observed in isolation — no scheduler, no timers, no randomness.
#include <gtest/gtest.h>

#include "core/omega_bounded.h"
#include "core/omega_nwnr.h"
#include "core/omega_write_efficient.h"
#include "registers/memory.h"

namespace omega {
namespace {

/// Executes `task`'s pending op against `mem` as `pid` and resumes it.
/// LeaderQuery is answered with `leader_answer`; returns the op executed.
OpKind drive_one(MemoryBackend& mem, ProcessId pid, ProcTask& task,
                 std::uint64_t leader_answer) {
  const OpKind k = task.pending();
  switch (k) {
    case OpKind::kRead:
      task.resume(mem.read(pid, task.pending_cell()));
      break;
    case OpKind::kWrite:
      mem.write(pid, task.pending_cell(), task.pending_value());
      task.resume(0);
      break;
    case OpKind::kLeaderQuery:
      task.resume(leader_answer);
      break;
    case OpKind::kYield:
      task.resume(0);
      break;
    default:
      ADD_FAILURE() << "unexpected op";
      break;
  }
  return k;
}

/// Runs the monitor through exactly one full scan (from WaitTimer back to
/// WaitTimer), executing every access.
void run_one_scan(MemoryBackend& mem, ProcessId pid, ProcTask& monitor,
                  std::uint64_t leader_answer = 0) {
  ASSERT_EQ(monitor.pending(), OpKind::kWaitTimer);
  monitor.resume(0);  // deliver expiry
  int guard = 0;
  while (monitor.pending() != OpKind::kWaitTimer) {
    drive_one(mem, pid, monitor, leader_answer);
    ASSERT_LT(++guard, 1000) << "scan did not terminate";
  }
}

struct Fig2Fixture {
  OmegaWriteEfficient::Shared shared;
  SimMemory mem;
  OmegaWriteEfficient p0;

  Fig2Fixture()
      : shared(OmegaWriteEfficient::Shared::make(3)),
        mem(shared.layout, 3),
        p0(mem, shared, 0, {0, 1, 2}) {}

  Cell progress(ProcessId k) {
    GroupId g = 0;
    EXPECT_TRUE(mem.layout().find_group("PROGRESS", g));
    return mem.layout().cell(g, k);
  }
  Cell stop(ProcessId k) {
    GroupId g = 0;
    EXPECT_TRUE(mem.layout().find_group("STOP", g));
    return mem.layout().cell(g, k);
  }
  Cell susp(ProcessId j, ProcessId k) {
    GroupId g = 0;
    EXPECT_TRUE(mem.layout().find_group("SUSPICIONS", g));
    return mem.layout().cell(g, j, k);
  }
};

TEST(Fig2Heartbeat, LeaderIncrementsProgressAndClearsStop) {
  Fig2Fixture f;
  f.mem.poke(f.stop(0), 1);  // STOP[0] initially true
  // Re-construct p0 so its mirror sees the poked STOP.
  OmegaWriteEfficient p0(f.mem, f.shared, 0, {0, 1, 2});
  ProcTask hb = p0.task_heartbeat();
  hb.start();
  // Lines 7-9: believes leader → writes PROGRESS, then clears STOP.
  ASSERT_EQ(hb.pending(), OpKind::kLeaderQuery);
  hb.resume(0);  // leader() = 0 = self
  ASSERT_EQ(hb.pending(), OpKind::kWrite);
  EXPECT_EQ(hb.pending_cell(), f.progress(0));
  EXPECT_EQ(hb.pending_value(), 1u);
  drive_one(f.mem, 0, hb, 0);
  ASSERT_EQ(hb.pending(), OpKind::kWrite);
  EXPECT_EQ(hb.pending_cell(), f.stop(0));
  EXPECT_EQ(hb.pending_value(), 0u);
  drive_one(f.mem, 0, hb, 0);
  // Next iteration: still leader → PROGRESS again, no STOP write (already 0).
  ASSERT_EQ(hb.pending(), OpKind::kLeaderQuery);
  hb.resume(0);
  ASSERT_EQ(hb.pending(), OpKind::kWrite);
  EXPECT_EQ(hb.pending_cell(), f.progress(0));
  EXPECT_EQ(hb.pending_value(), 2u);
  drive_one(f.mem, 0, hb, 0);
  ASSERT_EQ(hb.pending(), OpKind::kLeaderQuery) << "no redundant STOP write";
}

TEST(Fig2Heartbeat, DemotionWritesStopOnce) {
  Fig2Fixture f;
  ProcTask hb = f.p0.task_heartbeat();
  hb.start();
  // Not the leader (answer 2): exits the while, line 11 sets STOP := true.
  ASSERT_EQ(hb.pending(), OpKind::kLeaderQuery);
  hb.resume(2);
  ASSERT_EQ(hb.pending(), OpKind::kWrite);
  EXPECT_EQ(hb.pending_cell(), f.stop(0));
  EXPECT_EQ(hb.pending_value(), 1u);
  drive_one(f.mem, 0, hb, 2);
  // Still not leader: loops back to the query with no further write.
  ASSERT_EQ(hb.pending(), OpKind::kLeaderQuery);
  hb.resume(2);
  ASSERT_EQ(hb.pending(), OpKind::kLeaderQuery);
}

TEST(Fig2Monitor, FreshProgressAddsCandidate) {
  Fig2Fixture f;
  // p0 cold-starts with candidates {0}; p1 shows progress.
  OmegaWriteEfficient p0(f.mem, f.shared, 0, {});
  EXPECT_FALSE(p0.candidates().contains(1));
  f.mem.poke(f.progress(1), 7);  // PROGRESS[1] moved (≠ last_[1] = 0)
  ProcTask mon = p0.task_monitor();
  mon.start();
  run_one_scan(f.mem, 0, mon);
  EXPECT_TRUE(p0.candidates().contains(1));   // line 18
  EXPECT_FALSE(p0.candidates().contains(2));  // no progress, STOP=false...
  // ...but p2 was not a candidate, so line 22's guard fails: no suspicion.
  EXPECT_EQ(f.mem.peek(f.susp(0, 2)), 0u);
}

TEST(Fig2Monitor, StopRemovesWithoutSuspicion) {
  Fig2Fixture f;  // warm start: candidates {0,1,2}
  f.mem.poke(f.stop(1), 1);  // p1 stopped competing
  ProcTask mon = f.p0.task_monitor();
  mon.start();
  run_one_scan(f.mem, 0, mon);
  EXPECT_FALSE(f.p0.candidates().contains(1));  // line 21
  EXPECT_EQ(f.mem.peek(f.susp(0, 1)), 0u) << "no suspicion on voluntary stop";
}

TEST(Fig2Monitor, SilentCandidateGetsSuspectedOnceThenDropped) {
  Fig2Fixture f;  // candidates {0,1,2}; everyone silent, STOP=false
  ProcTask mon = f.p0.task_monitor();
  mon.start();
  run_one_scan(f.mem, 0, mon);
  // Lines 22-24: both p1 and p2 suspected and removed.
  EXPECT_EQ(f.mem.peek(f.susp(0, 1)), 1u);
  EXPECT_EQ(f.mem.peek(f.susp(0, 2)), 1u);
  EXPECT_FALSE(f.p0.candidates().contains(1));
  EXPECT_FALSE(f.p0.candidates().contains(2));
  EXPECT_EQ(f.p0.next_timeout(), 2u);  // line 27: max row + 1
  // Second scan: no longer candidates → no further suspicions (bounded).
  run_one_scan(f.mem, 0, mon);
  EXPECT_EQ(f.mem.peek(f.susp(0, 1)), 1u);
  EXPECT_EQ(f.mem.peek(f.susp(0, 2)), 1u);
}

TEST(Fig2Leader, LexMinOnCountsThenIds) {
  Fig2Fixture f;
  // Totals: p0=5, p1=3, p2=3 → lexmin picks p1 (count ties broken by id).
  f.mem.poke(f.susp(1, 0), 5);
  f.mem.poke(f.susp(0, 1), 3);
  f.mem.poke(f.susp(2, 2), 3);
  EXPECT_EQ(f.p0.leader(), 1u);
  // Column sums aggregate all rows.
  f.mem.poke(f.susp(2, 1), 1);  // p1's total: 4
  EXPECT_EQ(f.p0.leader(), 2u);
}

TEST(Fig2Leader, OnlyCandidatesConsidered) {
  Fig2Fixture f;
  OmegaWriteEfficient p0(f.mem, f.shared, 0, {2});  // candidates {0, 2}
  f.mem.poke(f.susp(1, 1), 0);   // p1 has the lowest total but is not a
  f.mem.poke(f.susp(1, 0), 9);   // candidate; p2 beats p0 on counts
  f.mem.poke(f.susp(1, 2), 1);
  EXPECT_EQ(p0.leader(), 2u);
}

TEST(Fig2Timeout, TracksOwnRowMax) {
  Fig2Fixture f;
  f.mem.poke(f.susp(0, 2), 41);
  OmegaWriteEfficient p0(f.mem, f.shared, 0, {0, 1, 2});
  EXPECT_EQ(p0.next_timeout(), 42u) << "mirror must include poked garbage";
}

// ---------------------------------------------------------------------------
// Figure 5: the boolean handshake.
// ---------------------------------------------------------------------------

struct Fig5Fixture {
  OmegaBounded::Shared shared;
  SimMemory mem;

  Fig5Fixture() : shared(OmegaBounded::Shared::make(2)), mem(shared.layout, 2) {}

  Cell progress(ProcessId i, ProcessId k) {
    GroupId g = 0;
    EXPECT_TRUE(mem.layout().find_group("PROGRESS", g));
    return mem.layout().cell(g, i, k);
  }
  Cell last(ProcessId i, ProcessId k) {
    GroupId g = 0;
    EXPECT_TRUE(mem.layout().find_group("LAST", g));
    return mem.layout().cell(g, i, k);
  }
};

TEST(Fig5Handshake, SignalArmAckRoundTrip) {
  Fig5Fixture f;
  OmegaBounded p0(f.mem, f.shared, 0, {0, 1});
  OmegaBounded p1(f.mem, f.shared, 1, {0, 1});

  // p0's heartbeat (believing leader): line 8.R2 arms the signal toward p1 —
  // PROGRESS[0][1] := ¬LAST[0][1] = ¬0 = 1.
  ProcTask hb = p0.task_heartbeat();
  hb.start();
  hb.resume(0);  // leader() = self
  ASSERT_EQ(hb.pending(), OpKind::kRead);   // reads LAST[0][1]
  EXPECT_EQ(hb.pending_cell(), f.last(0, 1));
  drive_one(f.mem, 0, hb, 0);
  ASSERT_EQ(hb.pending(), OpKind::kWrite);  // writes PROGRESS[0][1]
  EXPECT_EQ(hb.pending_cell(), f.progress(0, 1));
  EXPECT_EQ(hb.pending_value(), 1u);
  drive_one(f.mem, 0, hb, 0);

  // p1's monitor: sees PROGRESS[0][1] ≠ its mirror of LAST[0][1] → p0 is
  // alive (line 17.R1) → acknowledges by equalizing (line 19.R1).
  ProcTask mon = p1.task_monitor();
  mon.start();
  run_one_scan(f.mem, 1, mon);
  EXPECT_EQ(f.mem.peek(f.last(0, 1)), 1u) << "ack must equalize the pair";
  EXPECT_TRUE(p1.candidates().contains(0));

  // A second scan with no new signal and STOP[0]=false (p0 competing):
  // suspicion (lines 22-24).
  GroupId susp = 0;
  ASSERT_TRUE(f.mem.layout().find_group("SUSPICIONS", susp));
  run_one_scan(f.mem, 1, mon);
  EXPECT_EQ(f.mem.peek(f.mem.layout().cell(susp, 1, 0)), 1u);
  EXPECT_FALSE(p1.candidates().contains(0));

  // p0 re-arms: now ¬LAST[0][1] = ¬1 = 0 → PROGRESS toggles to 0.
  hb.resume(0);  // leader query answered: still leader
  ASSERT_EQ(hb.pending(), OpKind::kRead);
  drive_one(f.mem, 0, hb, 0);
  ASSERT_EQ(hb.pending(), OpKind::kWrite);
  EXPECT_EQ(hb.pending_value(), 0u) << "signal must toggle, not stick";
  drive_one(f.mem, 0, hb, 0);
  // p1 sees the fresh signal and re-adopts p0.
  run_one_scan(f.mem, 1, mon);
  EXPECT_TRUE(p1.candidates().contains(0));
}

// ---------------------------------------------------------------------------
// nWnR variant: the racy multi-writer increment (§3.5).
// ---------------------------------------------------------------------------

TEST(NwnrVariant, ConcurrentIncrementsCanLoseUpdates) {
  // Two monitors interleaved at access granularity around the same
  // SUSPICIONS_V cell: read(0)/read(0)/write(1)/write(1) — one increment is
  // lost. This is inherent to read-then-write on nWnR *registers* (no
  // fetch-and-add in the model) and exactly why the paper's matrix version
  // keeps a row per process.
  auto shared = OmegaNwnr::Shared::make(3);
  SimMemory mem(shared.layout, 3);
  OmegaNwnr p0(mem, shared, 0, {0, 1, 2});
  OmegaNwnr p1(mem, shared, 1, {0, 1, 2});
  GroupId sv = 0;
  ASSERT_TRUE(mem.layout().find_group("SUSPICIONS_V", sv));
  const Cell target = mem.layout().cell(sv, 2);  // both will suspect p2

  ProcTask m0 = p0.task_monitor();
  ProcTask m1 = p1.task_monitor();
  m0.start();
  m1.start();
  m0.resume(0);
  m1.resume(0);
  // Drive both scans in lockstep; collect the write values to `target`.
  std::vector<std::uint64_t> writes_to_target;
  int guard = 0;
  while (m0.pending() != OpKind::kWaitTimer ||
         m1.pending() != OpKind::kWaitTimer) {
    const std::pair<ProcTask*, ProcessId> entries[] = {{&m0, 0}, {&m1, 1}};
    for (const auto& [task, pid] : entries) {
      ProcTask& t = *task;
      if (t.pending() == OpKind::kWaitTimer) continue;
      if (t.pending() == OpKind::kWrite && t.pending_cell() == target) {
        writes_to_target.push_back(t.pending_value());
      }
      drive_one(mem, pid, t, 99);
    }
    ASSERT_LT(++guard, 1000);
  }
  // Both read 0 before either wrote: both wrote 1 — a lost update.
  ASSERT_EQ(writes_to_target.size(), 2u);
  EXPECT_EQ(writes_to_target[0], 1u);
  EXPECT_EQ(writes_to_target[1], 1u);
  EXPECT_EQ(mem.peek(target), 1u) << "two suspicions, counter shows one";
}

}  // namespace
}  // namespace omega
