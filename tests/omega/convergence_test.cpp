// Eventual Leadership (Theorem 1 and its Algorithm-2 counterpart): under AWB,
// every run converges to a single correct leader. These are the targeted
// integration tests; broad sweeps live in properties_test.cpp.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace omega {
namespace {

ConvergenceReport run_and_report(ScenarioConfig cfg, SimTime horizon) {
  auto d = make_scenario(cfg);
  d->run_until(horizon);
  return d->metrics().convergence(d->plan());
}

TEST(Convergence, Fig2SynchronousWorld) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kSync;
  cfg.gst = 0;
  const auto rep = run_and_report(cfg, 20000);
  ASSERT_TRUE(rep.converged);
  EXPECT_LT(rep.leader, cfg.n);
}

TEST(Convergence, Fig2AwbWorld) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 8;
  cfg.world = World::kAwb;
  const auto rep = run_and_report(cfg, 100000);
  ASSERT_TRUE(rep.converged) << "no convergence under AWB";
  EXPECT_GT(rep.time, 0);
}

TEST(Convergence, Fig5AwbWorld) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 8;
  cfg.world = World::kAwb;
  const auto rep = run_and_report(cfg, 100000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, SurvivesCrashOfEveryoneButOne) {
  // t is not a parameter of the algorithms: up to n-1 crashes are tolerated.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 6;
  cfg.world = World::kAwb;
  cfg.crashes = 5;
  cfg.crash_window = 3000;
  const auto rep = run_and_report(cfg, 150000);
  ASSERT_TRUE(rep.converged);
  EXPECT_EQ(rep.leader, cfg.timely);  // only survivor possible... the timely
}

TEST(Convergence, ReelectsAfterLeaderCrash) {
  // Let the run settle, crash whoever got elected, and require a new correct
  // leader to emerge after the crash. (Note: the bursty non-timely schedules
  // still have bounded post-GST pauses, so even if the AWB1-designated
  // process is the one crashed, some remaining process is de-facto timely
  // and convergence remains guaranteed.)
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.timely = 2;
  auto d = make_scenario(cfg);
  d->run_until(30000);
  const ProcessId boss = d->query_leader(cfg.timely);
  const SimTime crash_at = 31000;
  d->plan() = CrashPlan::at(5, {{boss, crash_at}});
  d->run_until(400000);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged);
  EXPECT_NE(rep.leader, boss);
  EXPECT_GT(rep.time, crash_at) << "re-election must happen after the crash";
}

TEST(Convergence, ColdStartCandidatesGrow) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.cold_start = true;  // candidates_i = {i}: everyone self-elects first
  const auto rep = run_and_report(cfg, 150000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, SelfStabilizesFromGarbageRegisters) {
  // Footnote 7: arbitrary initial register contents.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.garbage_init = true;
  cfg.garbage_max = 64;
  cfg.seed = 3;
  const auto rep = run_and_report(cfg, 200000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, Fig5SelfStabilizesFromGarbage) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.garbage_init = true;
  cfg.seed = 4;
  const auto rep = run_and_report(cfg, 200000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, SingletonSystemElectsItself) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 1;
  cfg.world = World::kSync;
  const auto rep = run_and_report(cfg, 5000);
  ASSERT_TRUE(rep.converged);
  EXPECT_EQ(rep.leader, 0u);
}

TEST(Convergence, TwoProcesses) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 2;
  cfg.world = World::kAwb;
  const auto rep = run_and_report(cfg, 60000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, EvSyncBaselineConvergesInItsOwnModel) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kEvSync;
  cfg.n = 6;
  cfg.world = World::kEs;  // the baseline's home turf
  const auto rep = run_and_report(cfg, 100000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, StepClockVariantConverges) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kStepClock;
  cfg.n = 6;
  cfg.world = World::kAwb;
  const auto rep = run_and_report(cfg, 150000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, NwnrVariantConverges) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kNwnr;
  cfg.n = 6;
  cfg.world = World::kAwb;
  const auto rep = run_and_report(cfg, 150000);
  ASSERT_TRUE(rep.converged);
}

TEST(Convergence, LeaderStableOverLongTail) {
  // Eventual leadership is a stability property: at the end of a long run,
  // the last output change must lie well before the horizon — the system
  // spends the whole tail of the run under one settled leader. (The exact
  // stabilization point is horizon-dependent while suspicion counters are
  // still warming up, so we assert a long quiet tail rather than equality of
  // two measured convergence times.)
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 6;
  cfg.world = World::kAwb;
  auto d = make_scenario(cfg);
  const SimTime horizon = 600000;
  d->run_until(horizon);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged);
  EXPECT_LT(rep.time, horizon / 2)
      << "leadership still flapping in the second half of the run";
}

}  // namespace
}  // namespace omega
