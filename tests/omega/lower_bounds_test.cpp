// Executable versions of the paper's lower-bound arguments (§3.4, §4.1).
// The proofs are indistinguishability constructions; here we *stage* the
// distinguished runs and measure the consequences:
//
//   Lemma 5 — the elected leader must write forever: silence the leader
//             (pause = "behaves like crashed" over any finite window) and
//             watch everyone else re-elect.
//   Lemma 6 — every other correct process must read forever: blind one
//             process (pause) while the leader crashes; the blinded process
//             keeps its stale leader and misses the re-election.
//   Thm. 5 / Cor. 1 — with bounded memory all processes write forever:
//             writer census contrast between Algorithm 1 and Algorithm 2.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace omega {
namespace {

TEST(Lemma5, SilencedLeaderIsDeposed) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.seed = 9;
  auto d = make_scenario(cfg);
  d->run_until(150000);
  const auto rep1 = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep1.converged);
  const ProcessId old_leader = rep1.leader;

  // The leader falls silent: it stops writing (and everything else). To the
  // rest of the system this is indistinguishable from a crash — which is
  // exactly why Lemma 5 says it must keep writing.
  d->plan().pause_forever(old_leader, d->now());
  d->run_until(500000);
  const auto rep2 = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep2.converged) << "survivors must re-elect";
  EXPECT_NE(rep2.leader, old_leader);
  EXPECT_GT(rep2.time, rep1.time);
}

TEST(Lemma5, LeaderKeepsWritingInNormalRuns) {
  // The positive direction: in a run where it stays leader, it writes in
  // every window, forever.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.seed = 9;
  auto d = make_scenario(cfg);
  d->run_until(150000);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged);
  for (int window = 0; window < 5; ++window) {
    const auto before = d->memory().instr().snapshot();
    d->run_for(10000);
    const auto after = d->memory().instr().snapshot();
    EXPECT_GT(after.writes_by[rep.leader], before.writes_by[rep.leader])
        << "window " << window;
  }
}

TEST(Lemma6, BlindedProcessMissesTheReElection) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.timely = 1;
  cfg.seed = 9;
  auto d = make_scenario(cfg);
  d->run_until(150000);
  const auto rep1 = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep1.converged);
  const ProcessId old_leader = rep1.leader;

  // Pick a correct observer that is neither the leader nor the timely
  // process; stop it from reading (pause), then crash the leader.
  ProcessId blinded = kNoProcess;
  for (ProcessId i = 0; i < d->n(); ++i) {
    if (i != old_leader && i != cfg.timely && d->plan().is_correct(i)) {
      blinded = i;
      break;
    }
  }
  ASSERT_NE(blinded, kNoProcess);
  d->plan().pause_forever(blinded, d->now());
  // "Crash" the leader shortly after. CrashPlan has no add-crash-later API
  // by design (crash schedules are part of the run definition), so the crash
  // is emulated with a pause — over the remaining finite run the two are
  // indistinguishable, which is the very point of the lemma.
  d->plan().pause_forever(old_leader, d->now() + 1000);
  d->run_until(600000);

  // The live processes re-elected someone else...
  const auto rep2 = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep2.converged);
  EXPECT_NE(rep2.leader, old_leader);
  // ...but the blinded process still believes in the dead leader.
  EXPECT_EQ(d->metrics().last_output(blinded), old_leader)
      << "a process that stops reading can never learn the leader changed";
}

TEST(Theorem5, BoundedMemoryForcesAllWritersUnboundedForcesOne) {
  // The inherent trade-off, measured side by side on identical worlds.
  auto census_of = [](AlgoKind algo) {
    ScenarioConfig cfg;
    cfg.algo = algo;
    cfg.n = 6;
    cfg.world = World::kAwb;
    cfg.seed = 13;
    auto d = make_scenario(cfg);
    d->run_until(250000);
    EXPECT_TRUE(d->metrics().convergence(d->plan()).converged);
    const auto before = d->memory().instr().snapshot();
    d->run_for(100000);
    const auto after = d->memory().instr().snapshot();
    return diff_writers(before, after).distinct_writers;
  };
  EXPECT_EQ(census_of(AlgoKind::kWriteEfficient), 1u)
      << "Algorithm 1 (unbounded PROGRESS): exactly one eventual writer";
  EXPECT_EQ(census_of(AlgoKind::kBounded), 6u)
      << "Algorithm 2 (bounded memory): every process writes forever";
}

}  // namespace
}  // namespace omega
