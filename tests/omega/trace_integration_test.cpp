// Trace integration: the driver's event stream tells the run's story in the
// right order — tests assert on event *sequences* (e.g. the demoted leader's
// suspicion precedes the re-election).
#include <gtest/gtest.h>

#include "sim/scenario.h"
#include "sim/trace.h"

namespace omega {
namespace {

TEST(TraceIntegration, RecordsAllEventKindsInARun) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.cold_start = true;  // guarantees competition → suspicions
  cfg.seed = 3;
  auto d = make_scenario(cfg);
  TraceLog log;
  SuspicionTracer tracer(d->memory().layout(), log);
  d->memory().instr().set_observer(&tracer);
  d->set_trace(&log);
  d->plan() = CrashPlan::at(4, {{3, 50000}});
  d->run_until(150000);

  EXPECT_GT(log.count(TraceEventKind::kLeaderChange), 0u);
  EXPECT_GT(log.count(TraceEventKind::kSuspicion), 0u);
  EXPECT_GT(log.count(TraceEventKind::kTimerArmed), 0u);
  EXPECT_EQ(log.count(TraceEventKind::kHalt), 1u);
  const auto halts = log.of_kind(TraceEventKind::kHalt);
  ASSERT_EQ(halts.size(), 1u);
  EXPECT_EQ(halts[0].actor, 3u);
  EXPECT_EQ(halts[0].a, 1u);  // crash, not pause
  EXPECT_GE(halts[0].when, 50000);
}

TEST(TraceIntegration, EventsAreTimeOrdered) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kSync;
  auto d = make_scenario(cfg);
  TraceLog log;
  d->set_trace(&log);
  d->run_until(20000);
  for (std::size_t i = 1; i < log.events().size(); ++i) {
    ASSERT_LE(log.events()[i - 1].when, log.events()[i].when);
  }
}

TEST(TraceIntegration, DemotionStory) {
  // After a settled leader is silenced: some survivor suspects it, and only
  // after that suspicion do the survivors' outputs change — the causal story
  // of Lemma 5, read off the trace.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.seed = 7;
  auto d = make_scenario(cfg);
  d->run_until(150000);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged);
  const ProcessId boss = rep.leader;

  TraceLog log;
  SuspicionTracer tracer(d->memory().layout(), log);
  d->memory().instr().set_observer(&tracer);
  d->set_trace(&log);
  d->plan().pause_forever(boss, d->now());
  d->run_until(d->now() + 400000);

  SimTime first_suspicion_of_boss = kNever;
  for (const auto& ev : log.of_kind(TraceEventKind::kSuspicion)) {
    if (ev.subject == boss) {
      first_suspicion_of_boss = std::min(first_suspicion_of_boss, ev.when);
    }
  }
  ASSERT_NE(first_suspicion_of_boss, kNever)
      << "survivors must suspect the silent leader";

  SimTime first_change_away = kNever;
  for (const auto& ev : log.of_kind(TraceEventKind::kLeaderChange)) {
    if (ev.actor != boss && ev.a == boss) {
      first_change_away = std::min(first_change_away, ev.when);
    }
  }
  ASSERT_NE(first_change_away, kNever) << "survivors must move off the boss";
  EXPECT_LE(first_suspicion_of_boss, first_change_away)
      << "the suspicion must precede (cause) the demotion";
}

TEST(TraceIntegration, TimerEventsCarryGrowingParameters) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.cold_start = true;
  cfg.seed = 5;
  auto d = make_scenario(cfg);
  TraceLog log;
  d->set_trace(&log);
  d->run_until(100000);
  // Timeout parameters are non-decreasing per process (max-suspicions + 1
  // with monotone counters).
  std::vector<std::uint64_t> last_x(4, 0);
  for (const auto& ev : log.of_kind(TraceEventKind::kTimerArmed)) {
    ASSERT_GE(ev.a, last_x[ev.actor]) << "timeout param shrank at p"
                                      << ev.actor;
    last_x[ev.actor] = ev.a;
  }
}

}  // namespace
}  // namespace omega
