// Property sweep: the Ω specification (§2.2) and the algorithms' structural
// invariants, asserted over a grid of (algorithm × world × timer × crashes ×
// seed) runs. Every AWB-satisfying combination must elect a single correct
// eventual leader; the run itself checks Validity on every query (metrics)
// and 1WnR ownership on every write (memory layer) — this suite adds
// Eventual Leadership, suspicion monotonicity, and timeout-policy invariants.
#include <gtest/gtest.h>

#include <map>

#include "sim/scenario.h"

namespace omega {
namespace {

struct PropertyCase {
  ScenarioConfig cfg;
  SimTime horizon = 150000;
  /// Latest acceptable stabilization point, as a fraction of the horizon.
  /// 1.0 = only require agreement at the horizon: used for the hand-shake
  /// algorithms under the bursty AWB world, where the *last* stray suspicion
  /// has a heavy-tailed arrival time (each pair leaks only finitely often,
  /// but the final leak can land arbitrarily late).
  double stability_frac = 0.8;
};

std::vector<PropertyCase> property_grid() {
  std::vector<PropertyCase> cases;
  const std::vector<AlgoKind> awb_algos = {
      AlgoKind::kWriteEfficient, AlgoKind::kBounded, AlgoKind::kNwnr,
      AlgoKind::kStepClock};
  const std::vector<World> worlds = {World::kAwb, World::kEs};
  const std::vector<TimerKind> timers = {TimerKind::kPerfect,
                                         TimerKind::kChaoticPrefix,
                                         TimerKind::kNonMonotone};
  for (AlgoKind algo : awb_algos) {
    for (World world : worlds) {
      for (TimerKind timer : timers) {
        for (std::uint32_t crashes : {0u, 2u}) {
          for (std::uint64_t seed : {11ull, 23ull}) {
            PropertyCase c;
            c.cfg.algo = algo;
            c.cfg.n = 6;
            c.cfg.world = world;
            c.cfg.timer = timer;
            c.cfg.crashes = crashes;
            c.cfg.seed = seed;
            // The hand-shake algorithms re-arm their alive signal once per
            // heartbeat round, so their suspicion warm-up under the bursty
            // AWB world runs to ~150k ticks; give those runs extra room.
            if (world == World::kAwb && (algo == AlgoKind::kBounded ||
                                         algo == AlgoKind::kStepClock)) {
              c.horizon = 400000;
              c.stability_frac = 1.0;
            }
            cases.push_back(c);
          }
        }
      }
    }
  }
  // The eventually-synchronous baseline is only expected to work in its own
  // model: ES world (its step-counted timeouts are sound there).
  for (std::uint32_t crashes : {0u, 2u}) {
    for (std::uint64_t seed : {11ull, 23ull}) {
      PropertyCase c;
      c.cfg.algo = AlgoKind::kEvSync;
      c.cfg.n = 6;
      c.cfg.world = World::kEs;
      c.cfg.crashes = crashes;
      c.cfg.seed = seed;
      cases.push_back(c);
    }
  }
  return cases;
}

std::string case_name(const testing::TestParamInfo<PropertyCase>& info) {
  std::string s = info.param.cfg.label();
  for (char& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

/// Checks that 1WnR suspicion counters never decrease. (The nWnR variant's
/// multi-writer counter can regress transiently when increments race — that
/// is inherent to read-then-write on nWnR *registers* and excluded here.)
class MonotoneCounterObserver final : public AccessObserver {
 public:
  explicit MonotoneCounterObserver(const Layout& layout) : layout_(layout) {
    GroupId g = 0;
    if (layout.find_group("SUSPICIONS", g)) group_ = static_cast<int>(g);
    if (layout.find_group("SUSPEV", g)) group_ = static_cast<int>(g);
  }

  void on_access(const AccessEvent& ev) override {
    if (!ev.is_write || group_ < 0) return;
    if (layout_.group_of(ev.cell) != static_cast<GroupId>(group_)) return;
    auto [it, inserted] = last_.try_emplace(ev.cell.index, ev.value);
    if (!inserted) {
      ASSERT_GE(ev.value, it->second)
          << "suspicion counter " << layout_.cell_name(ev.cell)
          << " decreased";
      it->second = ev.value;
    }
  }

 private:
  const Layout& layout_;
  int group_ = -1;
  std::map<std::uint32_t, std::uint64_t> last_;
};

class OmegaPropertyTest : public testing::TestWithParam<PropertyCase> {};

TEST_P(OmegaPropertyTest, ElectsSingleCorrectEventualLeader) {
  const PropertyCase& pc = GetParam();
  auto d = make_scenario(pc.cfg);
  MonotoneCounterObserver mono(d->memory().layout());
  d->memory().instr().set_observer(&mono);

  d->run_until(pc.horizon);

  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged) << pc.cfg.label();
  // Eventual Leadership: the common output is a correct process.
  EXPECT_TRUE(d->plan().is_correct(rep.leader)) << pc.cfg.label();
  // Termination: every live process's T2 loop kept sampling.
  for (ProcessId i = 0; i < d->n(); ++i) {
    if (d->plan().is_correct(i)) {
      EXPECT_GT(d->metrics().queries(i), 0u) << "p" << i;
    }
  }
  // Stability: the leader settled within the allowed fraction of the run.
  EXPECT_LE(rep.time, static_cast<SimTime>(pc.stability_frac *
                                           static_cast<double>(pc.horizon)))
      << pc.cfg.label();
}

TEST_P(OmegaPropertyTest, LiveProcessesReadForever) {
  // Lemma 6's flip side, measured: every correct process keeps reading the
  // shared memory even long after stabilization.
  const PropertyCase& pc = GetParam();
  auto d = make_scenario(pc.cfg);
  d->run_until(pc.horizon);
  const auto before = d->memory().instr().snapshot();
  d->run_for(20000);
  const auto after = d->memory().instr().snapshot();
  for (ProcessId i = 0; i < d->n(); ++i) {
    if (!d->plan().is_correct(i)) continue;
    EXPECT_GT(after.reads_by[i], before.reads_by[i])
        << "correct p" << i << " stopped reading — would miss a leader crash";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, OmegaPropertyTest,
                         testing::ValuesIn(property_grid()), case_name);

// ---------------------------------------------------------------------------
// Negative control: a timer violating AWB2 (bounded durations, condition f2
// fails). The guarantee collapses in a measurable way: suspicion counters
// never freeze. (Leadership may or may not flap for a specific seed — what is
// *necessarily* broken is the boundedness that all proofs rest on.)
// ---------------------------------------------------------------------------

std::uint64_t total_suspicions(SimDriver& d) {
  GroupId g = 0;
  if (!d.memory().layout().find_group("SUSPICIONS", g)) return 0;
  const auto& grp = d.memory().layout().group(g);
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < grp.rows; ++r) {
    for (std::uint32_t c = 0; c < grp.cols; ++c) {
      sum += d.memory().peek(d.memory().layout().cell(g, r, c));
    }
  }
  return sum;
}

ScenarioConfig awb2_violation_cfg() {
  // Where a bounded timer genuinely bites: Algorithm 2 re-arms its alive
  // signal once per heartbeat *round* (≈ 2n steps), and in the AWB world the
  // bursty observers' pauses keep landing scan pairs inside a no-signal
  // window. A capped timer can never outgrow that, so suspicions leak
  // forever; a diverging (AWB2) timer outgrows it and freezes (Lemma 2).
  // (In gentler worlds the scan-duration floor alone can mask the capped
  // timer — the violation matters relative to the leader's write cadence,
  // which is exactly what condition f2's divergence protects against in
  // general.)
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kBounded;
  cfg.n = 6;
  cfg.world = World::kAwb;
  cfg.seed = 11;
  return cfg;
}

TEST(Awb2Violation, SuspicionsGrowForeverUnderSubDominatingTimer) {
  ScenarioConfig cfg = awb2_violation_cfg();
  cfg.timer = TimerKind::kSubDominating;
  auto d = make_scenario(cfg);
  d->run_until(200000);
  const auto mid = total_suspicions(*d);
  d->run_until(350000);
  const auto end = total_suspicions(*d);
  EXPECT_GT(end, mid + 10)
      << "suspicions should keep growing when AWB2 is violated";
}

TEST(Awb2Violation, SameRunWithAwb2TimerFreezes) {
  // Control: identical scenario except the timer satisfies AWB2 —
  // suspicions must freeze in the second half (Lemma 2).
  ScenarioConfig cfg = awb2_violation_cfg();
  cfg.timer = TimerKind::kPerfect;
  auto d = make_scenario(cfg);
  d->run_until(200000);
  const auto mid = total_suspicions(*d);
  d->run_until(350000);
  const auto end = total_suspicions(*d);
  EXPECT_EQ(end, mid) << "suspicions must be bounded under AWB (Lemma 2)";
}

}  // namespace
}  // namespace omega
