// Timeout-policy knob (E11d): the paper's max+1 rule vs exponential growth.
#include <gtest/gtest.h>

#include "core/omega_bounded.h"
#include "core/omega_write_efficient.h"
#include "sim/scenario.h"

namespace omega {
namespace {

TEST(TimeoutPolicy, ApplyRules) {
  EXPECT_EQ(apply_timeout_policy(TimeoutPolicy::kMaxPlusOne, 0), 1u);
  EXPECT_EQ(apply_timeout_policy(TimeoutPolicy::kMaxPlusOne, 41), 42u);
  EXPECT_EQ(apply_timeout_policy(TimeoutPolicy::kDoubling, 0), 1u);
  EXPECT_EQ(apply_timeout_policy(TimeoutPolicy::kDoubling, 5), 32u);
  // Capped so the timer parameter cannot explode past 2^24.
  EXPECT_EQ(apply_timeout_policy(TimeoutPolicy::kDoubling, 60), 1u << 24);
}

TEST(TimeoutPolicy, NextTimeoutFollowsPolicy) {
  auto shared = OmegaWriteEfficient::Shared::make(3);
  SimMemory mem(shared.layout, 3);
  GroupId susp = 0;
  ASSERT_TRUE(mem.layout().find_group("SUSPICIONS", susp));
  mem.poke(mem.layout().cell(susp, 0, 2), 4);  // own-row max = 4
  OmegaWriteEfficient p0(mem, shared, 0, {0, 1, 2});
  EXPECT_EQ(p0.next_timeout(), 5u);  // paper default
  p0.set_timeout_policy(TimeoutPolicy::kDoubling);
  EXPECT_EQ(p0.next_timeout(), 16u);
}

TEST(TimeoutPolicy, DoublingStillSatisfiesOmega) {
  // The policy only changes constants: 2^max also diverges with the row
  // maximum, so AWB2's requirements are intact and convergence must hold.
  for (AlgoKind algo : {AlgoKind::kWriteEfficient, AlgoKind::kBounded}) {
    ScenarioConfig cfg;
    cfg.algo = algo;
    cfg.n = 5;
    cfg.world = World::kAwb;
    cfg.seed = 21;
    auto d = make_scenario(cfg);
    for (ProcessId i = 0; i < cfg.n; ++i) {
      if (algo == AlgoKind::kWriteEfficient) {
        dynamic_cast<OmegaWriteEfficient&>(d->process(i))
            .set_timeout_policy(TimeoutPolicy::kDoubling);
      } else {
        dynamic_cast<OmegaBounded&>(d->process(i))
            .set_timeout_policy(TimeoutPolicy::kDoubling);
      }
    }
    d->run_until(300000);
    const auto rep = d->metrics().convergence(d->plan());
    ASSERT_TRUE(rep.converged) << algo_name(algo);
    EXPECT_TRUE(d->plan().is_correct(rep.leader));
  }
}

TEST(TimeoutPolicy, DoublingCutsWarmupInMarginalRegime) {
  // fig5 with unit=8 (below the handshake re-arm period): the doubling
  // policy needs O(log) suspicions per pair instead of O(gap/unit).
  auto run = [](TimeoutPolicy policy) {
    ScenarioConfig cfg;
    cfg.algo = AlgoKind::kBounded;
    cfg.n = 6;
    cfg.world = World::kAwb;
    cfg.timer_unit = 8;
    cfg.seed = 2;
    auto d = make_scenario(cfg);
    for (ProcessId i = 0; i < cfg.n; ++i) {
      dynamic_cast<OmegaBounded&>(d->process(i)).set_timeout_policy(policy);
    }
    d->run_until(400000);
    GroupId g = 0;
    EXPECT_TRUE(d->memory().layout().find_group("SUSPICIONS", g));
    std::uint64_t total = 0;
    for (ProcessId r = 0; r < cfg.n; ++r) {
      for (ProcessId c = 0; c < cfg.n; ++c) {
        total += d->memory().peek(d->memory().layout().cell(g, r, c));
      }
    }
    return total;
  };
  const auto linear = run(TimeoutPolicy::kMaxPlusOne);
  const auto doubling = run(TimeoutPolicy::kDoubling);
  EXPECT_LT(doubling * 2, linear)
      << "doubling=" << doubling << " linear=" << linear;
}

}  // namespace
}  // namespace omega
