// SimDriver mechanics: deterministic stepping, crash/pause halting, timer
// arming, app-task scheduling — independent of any convergence claim.
#include "sim/driver.h"

#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace omega {
namespace {

std::unique_ptr<SimDriver> small_run(std::uint64_t seed = 1,
                                     AlgoKind algo = AlgoKind::kWriteEfficient) {
  ScenarioConfig cfg;
  cfg.algo = algo;
  cfg.n = 4;
  cfg.world = World::kSync;
  cfg.timer = TimerKind::kPerfect;
  cfg.gst = 0;
  cfg.seed = seed;
  return make_scenario(cfg);
}

TEST(SimDriver, TimeAdvancesToTarget) {
  auto d = small_run();
  d->run_until(1000);
  EXPECT_EQ(d->now(), 1000);
  d->run_for(500);
  EXPECT_EQ(d->now(), 1500);
}

TEST(SimDriver, ProcessesTakeSteps) {
  auto d = small_run();
  d->run_until(2000);
  const auto snap = d->memory().instr().snapshot();
  EXPECT_GT(snap.total_reads, 0u);
  EXPECT_GT(snap.total_writes, 0u);
  for (ProcessId i = 0; i < d->n(); ++i) {
    EXPECT_GT(d->metrics().queries(i), 0u) << "p" << i << " never ran T2";
  }
}

TEST(SimDriver, DeterministicForSameSeed) {
  auto a = small_run(7);
  auto b = small_run(7);
  a->run_until(5000);
  b->run_until(5000);
  const auto sa = a->memory().instr().snapshot();
  const auto sb = b->memory().instr().snapshot();
  EXPECT_EQ(sa.reads_by, sb.reads_by);
  EXPECT_EQ(sa.writes_by, sb.writes_by);
  EXPECT_EQ(sa.high_water, sb.high_water);
  for (ProcessId i = 0; i < a->n(); ++i) {
    EXPECT_EQ(a->metrics().last_output(i), b->metrics().last_output(i));
    EXPECT_EQ(a->metrics().queries(i), b->metrics().queries(i));
  }
}

TEST(SimDriver, SeedsChangeTheRun) {
  auto a = small_run(1);
  auto b = small_run(2);
  // Synchronous schedules step identically, but timer jitter/rng still give
  // identical runs here — use AWB world to see seed effects.
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.seed = 1;
  auto c = make_scenario(cfg);
  cfg.seed = 99;
  auto e = make_scenario(cfg);
  c->run_until(5000);
  e->run_until(5000);
  EXPECT_NE(c->memory().instr().snapshot().total_reads,
            e->memory().instr().snapshot().total_reads);
}

TEST(SimDriver, CrashedProcessStopsAccessingMemory) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.world = World::kSync;
  OmegaInstance inst = make_omega(cfg.algo, cfg.n);
  auto plan = CrashPlan::at(4, {{2, 500}});
  SimDriver d(std::move(inst), make_synchronous_schedule(),
              make_perfect_timer(8), plan);
  d.run_until(500);
  const auto at_crash = d.memory().instr().snapshot();
  d.run_until(5000);
  const auto later = d.memory().instr().snapshot();
  EXPECT_EQ(later.reads_by[2], at_crash.reads_by[2]);
  EXPECT_EQ(later.writes_by[2], at_crash.writes_by[2]);
  // Others keep running.
  EXPECT_GT(later.reads_by[0], at_crash.reads_by[0]);
}

TEST(SimDriver, PausedProcessStopsButOthersContinue) {
  auto d = small_run();
  d->plan().pause_forever(1, 300);
  d->run_until(3000);
  const auto snap = d->memory().instr().snapshot();
  EXPECT_GT(snap.reads_by[0], snap.reads_by[1]);
  EXPECT_THROW(d->query_leader(1), InvariantViolation);  // halted
}

TEST(SimDriver, QueryLeaderReturnsValidId) {
  auto d = small_run();
  d->run_until(2000);
  for (ProcessId i = 0; i < d->n(); ++i) {
    const ProcessId out = d->query_leader(i);
    EXPECT_LT(out, d->n());
  }
}

TEST(SimDriver, TimersAreArmedAndRearmed) {
  auto d = small_run();
  d->run_until(5000);
  for (ProcessId i = 0; i < d->n(); ++i) {
    EXPECT_GT(d->metrics().timers_armed(i), 1u) << "p" << i;
  }
}

TEST(SimDriver, StepClockVariantNeedsNoTimer) {
  auto d = small_run(1, AlgoKind::kStepClock);
  d->run_until(5000);
  for (ProcessId i = 0; i < d->n(); ++i) {
    EXPECT_EQ(d->metrics().timers_armed(i), 0u) << "p" << i;
    EXPECT_GT(d->metrics().queries(i), 0u);
  }
}

ProcTask writer_app(Cell c, int count) {
  for (int i = 1; i <= count; ++i) {
    co_await WriteOp{c, static_cast<std::uint64_t>(i)};
  }
}

TEST(SimDriver, AppTasksShareStepsAndComplete) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.world = World::kSync;
  auto d = make_scenario(cfg);
  // Give p0 an app writing its own PROGRESS-adjacent cell: use a cell p0
  // owns — PROGRESS[0] in fig2's layout.
  GroupId prog = 0;
  ASSERT_TRUE(d->memory().layout().find_group("PROGRESS", prog));
  const Cell c = d->memory().layout().cell(prog, 0);
  d->add_app_task(0, writer_app(c, 5));
  EXPECT_FALSE(d->all_apps_done());
  d->run_until(200);
  EXPECT_TRUE(d->apps_done(0));
  EXPECT_TRUE(d->all_apps_done());
}

TEST(SimDriver, AppTaskOwnershipStillEnforced) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.world = World::kSync;
  auto d = make_scenario(cfg);
  GroupId prog = 0;
  ASSERT_TRUE(d->memory().layout().find_group("PROGRESS", prog));
  // App on p1 tries to write p0's register: the model must reject it when
  // the op executes.
  d->add_app_task(1, writer_app(d->memory().layout().cell(prog, 0), 1));
  EXPECT_THROW(d->run_until(200), InvariantViolation);
}

namespace {
/// Backend charging a fixed latency per access (exercises access_cost plumbing).
class SlowMemory final : public MemoryBackend {
 public:
  SlowMemory(Layout layout, std::uint32_t n, SimDuration cost)
      : MemoryBackend(std::move(layout), n), cost_(cost),
        cells_(this->layout().size(), 0) {}
  SimDuration access_cost(Cell, bool) override { return cost_; }

 protected:
  std::uint64_t load(Cell c) const override { return cells_[c.index]; }
  void store(Cell c, std::uint64_t v) override { cells_[c.index] = v; }

 private:
  SimDuration cost_;
  std::vector<std::uint64_t> cells_;
};
}  // namespace

TEST(SimDriver, AccessCostsSlowProcessesDown) {
  // Two identical synchronous runs, one over free memory and one where every
  // access costs 20 extra ticks: within the same horizon the slow system
  // performs far fewer accesses (the driver charges the latency to the
  // accessing process's next step).
  auto build = [](SimDuration cost) {
    OmegaInstance inst = make_omega(
        AlgoKind::kWriteEfficient, 3, [cost](Layout l, std::uint32_t n) {
          return std::unique_ptr<MemoryBackend>(
              std::make_unique<SlowMemory>(std::move(l), n, cost));
        });
    return std::make_unique<SimDriver>(std::move(inst),
                                       make_synchronous_schedule(),
                                       make_perfect_timer(8),
                                       CrashPlan::none(3));
  };
  auto fast = build(0);
  auto slow = build(20);
  fast->run_until(50000);
  slow->run_until(50000);
  const auto f = fast->memory().instr().snapshot();
  const auto s = slow->memory().instr().snapshot();
  EXPECT_GT(f.total_reads + f.total_writes,
            5 * (s.total_reads + s.total_writes));
  // Both still make progress and elect someone.
  EXPECT_TRUE(slow->metrics().convergence(slow->plan()).converged);
}

TEST(SimDriver, RunUntilPastHorizonIsIdempotent) {
  auto d = small_run();
  d->run_until(100);
  d->run_until(100);
  EXPECT_EQ(d->now(), 100);
  d->run_until(50);  // no going back
  EXPECT_EQ(d->now(), 100);
}

}  // namespace
}  // namespace omega
