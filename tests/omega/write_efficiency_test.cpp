// The paper's efficiency/boundedness theorems, measured:
//   Thm. 2 — Algorithm 1: every shared variable except PROGRESS[ℓ] bounded.
//   Thm. 3 — Algorithm 1: eventually a single writer, writing one variable.
//   Thm. 6 — Algorithm 2: ALL shared variables bounded.
//   Thm. 7 — Algorithm 2: eventually only PROGRESS[ℓ][·] and LAST[ℓ][·] are
//            written (so all correct processes write forever — Cor. 1).
#include <gtest/gtest.h>

#include <set>

#include "sim/scenario.h"

namespace omega {
namespace {

struct Settled {
  std::unique_ptr<SimDriver> driver;
  ProcessId leader = kNoProcess;
  InstrumentationSnapshot before;  ///< at the start of the settled window
  InstrumentationSnapshot after;   ///< at the end of the run
  std::vector<std::uint64_t> cells_before;  ///< raw contents at window start
  std::vector<std::uint64_t> cells_after;
};

/// Runs cfg long past stabilization and snapshots a trailing window.
Settled settle(ScenarioConfig cfg, SimTime settle_by = 200000,
               SimDuration window = 100000) {
  Settled s;
  s.driver = make_scenario(cfg);
  auto& d = *s.driver;
  d.run_until(settle_by);
  const auto rep0 = d.metrics().convergence(d.plan());
  EXPECT_TRUE(rep0.converged) << cfg.label();
  s.before = d.memory().instr().snapshot();
  for (std::uint32_t i = 0; i < d.memory().layout().size(); ++i) {
    s.cells_before.push_back(d.memory().peek(Cell{i}));
  }
  d.run_for(window);
  const auto rep = d.metrics().convergence(d.plan());
  EXPECT_TRUE(rep.converged) << cfg.label();
  EXPECT_LE(rep.time, settle_by) << "leader changed inside the window";
  s.leader = rep.leader;
  s.after = d.memory().instr().snapshot();
  for (std::uint32_t i = 0; i < d.memory().layout().size(); ++i) {
    s.cells_after.push_back(d.memory().peek(Cell{i}));
  }
  return s;
}

ScenarioConfig fig2_cfg() {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 6;
  cfg.world = World::kAwb;
  cfg.seed = 5;
  return cfg;
}

ScenarioConfig fig5_cfg() {
  ScenarioConfig cfg = fig2_cfg();
  cfg.algo = AlgoKind::kBounded;
  return cfg;
}

TEST(Theorem3, Fig2EventuallySingleWriter) {
  const Settled s = settle(fig2_cfg());
  const auto census = diff_writers(s.before, s.after);
  EXPECT_EQ(census.distinct_writers, 1u)
      << "after stabilization only the leader may write (Thm. 3)";
  EXPECT_GT(census.writes_by[s.leader], 0u)
      << "the leader must write forever (Lemma 5)";
}

TEST(Theorem3, Fig2SingleVariableWritten) {
  const Settled s = settle(fig2_cfg());
  const Layout& layout = s.driver->memory().layout();
  GroupId prog = 0;
  ASSERT_TRUE(layout.find_group("PROGRESS", prog));
  const Cell leader_progress = layout.cell(prog, s.leader);
  for (std::uint32_t i = 0; i < layout.size(); ++i) {
    const auto delta = s.after.writes_to[i] - s.before.writes_to[i];
    if (Cell{i} == leader_progress) {
      EXPECT_GT(delta, 0u) << "PROGRESS[leader] must keep moving";
    } else {
      EXPECT_EQ(delta, 0u) << layout.cell_name(Cell{i})
                           << " written after stabilization";
    }
  }
}

TEST(Theorem2, Fig2AllButOneVariableBounded) {
  const Settled s = settle(fig2_cfg());
  const Layout& layout = s.driver->memory().layout();
  GroupId prog = 0;
  ASSERT_TRUE(layout.find_group("PROGRESS", prog));
  const Cell leader_progress = layout.cell(prog, s.leader);
  for (std::uint32_t i = 0; i < layout.size(); ++i) {
    if (Cell{i} == leader_progress) {
      EXPECT_GT(s.cells_after[i], s.cells_before[i])
          << "PROGRESS[leader] is the one unbounded variable";
    } else {
      EXPECT_EQ(s.cells_after[i], s.cells_before[i])
          << layout.cell_name(Cell{i}) << " still changing (Thm. 2)";
    }
  }
}

TEST(Theorem2, Fig2TimeoutsStopIncreasing) {
  // "even the timeout values stop increasing forever": the max timeout
  // parameter ever armed equals the max already reached at settle time.
  ScenarioConfig cfg = fig2_cfg();
  auto d = make_scenario(cfg);
  d->run_until(200000);
  std::vector<std::uint64_t> mid;
  for (ProcessId i = 0; i < d->n(); ++i) {
    mid.push_back(d->metrics().max_timeout_param(i));
  }
  d->run_for(100000);
  for (ProcessId i = 0; i < d->n(); ++i) {
    EXPECT_EQ(d->metrics().max_timeout_param(i), mid[i]) << "p" << i;
  }
}

TEST(Theorem7, Fig5OnlyHandshakeWithLeaderWritten) {
  const Settled s = settle(fig5_cfg());
  const Layout& layout = s.driver->memory().layout();
  GroupId prog = 0, last = 0;
  ASSERT_TRUE(layout.find_group("PROGRESS", prog));
  ASSERT_TRUE(layout.find_group("LAST", last));
  const auto& pg = layout.group(prog);
  for (std::uint32_t i = 0; i < layout.size(); ++i) {
    const auto delta = s.after.writes_to[i] - s.before.writes_to[i];
    if (delta == 0) continue;
    // Any still-written cell must be PROGRESS[ℓ][k] or LAST[ℓ][k].
    const GroupId g = layout.group_of(Cell{i});
    ASSERT_TRUE(g == prog || g == last)
        << layout.cell_name(Cell{i}) << " written after stabilization";
    const std::uint32_t off =
        Cell{i}.index - (g == prog ? pg.first : layout.group(last).first);
    EXPECT_EQ(off / pg.cols, s.leader)
        << layout.cell_name(Cell{i}) << ": handshake not with the leader";
  }
}

TEST(Corollary1, Fig5AllCorrectProcessesWriteForever) {
  const Settled s = settle(fig5_cfg());
  const auto census = diff_writers(s.before, s.after);
  std::uint32_t correct = 0;
  for (ProcessId i = 0; i < s.driver->n(); ++i) {
    if (!s.driver->plan().is_correct(i)) continue;
    ++correct;
    EXPECT_GT(census.writes_by[i], 0u)
        << "correct p" << i
        << " stopped writing — impossible with bounded memory (Cor. 1)";
  }
  EXPECT_EQ(census.distinct_writers, correct);
}

TEST(Theorem6, Fig5AllRegistersBoundedBits) {
  // Beyond "stops changing": with Algorithm 2 the *domains* are bounded —
  // PROGRESS/LAST are booleans, STOP is boolean, SUSPICIONS froze.
  const Settled s = settle(fig5_cfg());
  const Layout& layout = s.driver->memory().layout();
  GroupId prog = 0, last = 0, stop = 0, susp = 0;
  ASSERT_TRUE(layout.find_group("PROGRESS", prog));
  ASSERT_TRUE(layout.find_group("LAST", last));
  ASSERT_TRUE(layout.find_group("STOP", stop));
  ASSERT_TRUE(layout.find_group("SUSPICIONS", susp));
  for (std::uint32_t i = 0; i < layout.size(); ++i) {
    const GroupId g = layout.group_of(Cell{i});
    if (g == prog || g == last || g == stop) {
      EXPECT_LE(s.after.high_water[i], 1u)
          << layout.cell_name(Cell{i}) << " must be boolean";
    } else {
      ASSERT_EQ(g, susp);
      EXPECT_EQ(s.cells_after[i], s.cells_before[i])
          << layout.cell_name(Cell{i}) << " suspicion counter unbounded";
    }
  }
}

TEST(Theorem6, Fig5HandshakeKeepsToggling) {
  // The boundedness is not vacuous: the leader's alive-signal handshake
  // keeps being rewritten forever (bounded values, unbounded activity).
  const Settled s = settle(fig5_cfg());
  const Layout& layout = s.driver->memory().layout();
  GroupId prog = 0;
  ASSERT_TRUE(layout.find_group("PROGRESS", prog));
  std::uint64_t handshake_writes = 0;
  for (ProcessId k = 0; k < s.driver->n(); ++k) {
    if (k == s.leader) continue;
    const Cell c = layout.cell(prog, s.leader, k);
    handshake_writes += s.after.writes_to[c.index] -
                        s.before.writes_to[c.index];
  }
  EXPECT_GT(handshake_writes, 100u);
}

TEST(Baseline, EvSyncEveryoneWritesAndHeartbeatsUnbounded) {
  // The baseline pays both costs the paper's algorithms avoid: all processes
  // write forever AND its HB registers grow without bound.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kEvSync;
  cfg.n = 6;
  cfg.world = World::kEs;
  cfg.seed = 5;
  const Settled s = settle(cfg);
  const auto census = diff_writers(s.before, s.after);
  EXPECT_EQ(census.distinct_writers, s.driver->n());
  const Layout& layout = s.driver->memory().layout();
  GroupId hb = 0;
  ASSERT_TRUE(layout.find_group("HB", hb));
  for (ProcessId i = 0; i < s.driver->n(); ++i) {
    const Cell c = layout.cell(hb, i);
    EXPECT_GT(s.cells_after[c.index], s.cells_before[c.index])
        << "HB[" << i << "] should be unbounded";
  }
}

TEST(Theorem3, WriteEfficiencyHoldsUnderCrashes) {
  ScenarioConfig cfg = fig2_cfg();
  cfg.crashes = 3;
  cfg.crash_window = 2000;
  const Settled s = settle(cfg, 300000, 100000);
  const auto census = diff_writers(s.before, s.after);
  EXPECT_EQ(census.distinct_writers, 1u);
  EXPECT_GT(census.writes_by[s.leader], 0u);
}

}  // namespace
}  // namespace omega
