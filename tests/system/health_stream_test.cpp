// v1.5 streaming telemetry off a LIVE three-process SmrNode cluster:
// subscribe METRICS_WATCH on a survivor node, watch sampler ticks flow
// as reassembled kMetricsTick events, SIGKILL the leader's process, and
// assert the failover surfaces in-band — the streamed health byte goes
// degraded (the survivor's leader-churn rule fires on the epoch change)
// and recovers to ok once the new epoch holds. The HEALTH RPC must
// agree with the stream at both ends of the arc.
//
// fork() happens before any thread exists in this binary (gtest
// discovery runs each TEST in its own process), so the children may
// safely construct the full threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "smr/node.h"

namespace omega::smr {
namespace {

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr svc::GroupId kGid = 51;

NodeTopology make_topology() {
  NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(NodeEndpoint{i, "127.0.0.1", pick_free_port(),
                                      pick_free_port()});
  }
  return topo;
}

[[noreturn]] void run_node(const NodeTopology& base, std::uint32_t self) {
  try {
    NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 1000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    SmrNode node(topo, scfg);
    SmrSpec spec;
    spec.n = 3;
    spec.capacity = 512;
    spec.window = 4;
    spec.max_batch = 8;
    node.add_log(kGid, spec);
    node.start();
    for (;;) {
      if (node.service().failed()) {
        std::fprintf(stderr, "node %u FAILED: %s\n", self,
                     node.service().failure_message().c_str());
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node %u threw: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

class Cluster {
 public:
  Cluster() : topo_(make_topology()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const pid_t pid = fork();
      if (pid == 0) run_node(topo_, i);
      pids_.push_back(pid);
    }
  }

  ~Cluster() {
    for (const pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  const NodeTopology& topo() const { return topo_; }

  void kill_node(std::uint32_t node) {
    ::kill(pids_[node], SIGKILL);
    ::waitpid(pids_[node], nullptr, 0);
    pids_[node] = -1;
  }

  void connect(net::Client& c, std::uint32_t node, int deadline_s = 60) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    for (;;) {
      try {
        c.connect("127.0.0.1", topo_.nodes[node].serve_port, 2000);
        c.enable_auto_reconnect();
        return;
      } catch (const net::NetError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  ProcessId await_leader(int deadline_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint32_t node = 0; node < 3; ++node) {
        try {
          net::Client c;
          connect(c, node, 5);
          const auto r = c.leader(kGid);
          if (r.ok() && r.view.leader != kNoProcess) return r.view.leader;
        } catch (const net::NetError&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return kNoProcess;
  }

 private:
  NodeTopology topo_;
  std::vector<pid_t> pids_;
};

/// Drains kMetricsTick events until one matches `want_health`, or the
/// deadline passes. Ticks must be strictly increasing on the stream.
bool await_stream_health(net::Client& c, std::uint8_t want_health,
                         std::uint64_t* last_tick, int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::optional<net::Client::Event> e = c.next_event(500);
    if (!e || e->kind != net::Client::Event::Kind::kMetricsTick) continue;
    EXPECT_GT(e->tick, *last_tick) << "sampler ticks must not go backward";
    *last_tick = e->tick;
    EXPECT_FALSE(e->samples.empty())
        << "a sampler tick always carries the full scrape";
    if (e->health == want_health) return true;
  }
  return false;
}

TEST(HealthStream, TicksFlowAndFailoverDegradesThenRecovers) {
  Cluster cluster;

  const ProcessId leader = cluster.await_leader(120);
  ASSERT_NE(leader, kNoProcess);
  const std::uint32_t leader_node = cluster.topo().node_of(leader);
  const std::uint32_t survivor = (leader_node + 1) % 3;

  // Subscribe the survivor's sampler stream and see live ticks before
  // anything goes wrong: increasing tick counter, full scrape attached,
  // health byte ok.
  net::Client c;
  cluster.connect(c, survivor);
  const auto w = c.metrics_watch();
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w.period_ms, 0u);

  std::uint64_t last_tick = 0;
  ASSERT_TRUE(await_stream_health(c, /*want_health=*/0, &last_tick, 60))
      << "no ok sampler tick streamed from the survivor";

  // The HEALTH RPC must agree with the stream's baseline: all rules
  // registered, nothing firing.
  {
    const auto h = c.health();
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.overall, 0);
    EXPECT_GT(h.rules_total, 0);
    EXPECT_TRUE(h.firing.empty());
  }

  // SIGKILL the leader's process. The survivor's leader-churn rule sees
  // the epoch change and the degradation must arrive IN-BAND on the
  // already-open stream — no polling, no reconnect.
  cluster.kill_node(leader_node);
  ASSERT_TRUE(await_stream_health(c, /*want_health=*/1, &last_tick, 90))
      << "failover never surfaced as a degraded streamed health byte";

  // While degraded, the HEALTH RPC names the firing rule.
  {
    const auto h = c.health();
    ASSERT_TRUE(h.ok());
    if (h.overall >= 1) {
      ASSERT_FALSE(h.firing.empty());
      bool churn = false;
      for (const auto& r : h.firing) churn |= r.name == "leader-churn";
      EXPECT_TRUE(churn) << "expected leader-churn among the firing rules";
    }
  }

  // Once the new epoch holds, the churn window drains and the rule's
  // recover_after hysteresis clears: the stream must return to ok.
  ASSERT_TRUE(await_stream_health(c, /*want_health=*/0, &last_tick, 90))
      << "streamed health never recovered to ok after the failover";
  {
    const auto h = c.health();
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.overall, 0);
    EXPECT_TRUE(h.firing.empty());
  }
}

}  // namespace
}  // namespace omega::smr
