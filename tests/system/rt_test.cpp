// Real-thread runtime: the repro path where the paper's 1WnR atomic
// registers are std::atomic<uint64_t> and processes are std::thread. Times
// here are generous — this box may have a single core, so progress depends
// on the OS scheduler rotating the threads (which is exactly the asynchrony
// the algorithms are built for).
#include "rt/rt_driver.h"

#include <gtest/gtest.h>

#include <array>

#include "consensus/consensus.h"
#include "rt/atomic_memory.h"

namespace omega {
namespace {

TEST(AtomicMemory, BasicReadWriteAndOwnership) {
  LayoutBuilder b;
  const GroupId g = b.add_array("X", 4, OwnerRule::kRowOwner, false);
  AtomicMemory mem(b.build(), 4);
  const Cell c = mem.layout().cell(g, 2);
  mem.write(2, c, 99);
  EXPECT_EQ(mem.read(0, c), 99u);
  EXPECT_THROW(mem.write(1, c, 5), InvariantViolation);
}

RtConfig quick_config(AlgoKind algo, std::uint32_t n) {
  RtConfig cfg;
  cfg.algo = algo;
  cfg.n = n;
  cfg.tick_us = 2000;  // generous units: scheduler jitter absorbed quickly
  cfg.pace_us = 100;   // keep every thread scheduled on few cores
  return cfg;
}

TEST(RtDriver, StartsAndStopsCleanly) {
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 2));
  d.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  for (ProcessId i = 0; i < 2; ++i) {
    EXPECT_GT(d.status(i).leader_queries, 0u) << "p" << i;
  }
}

TEST(RtDriver, ElectsStableLeaderOnHardwareAtomics) {
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 3));
  d.start();
  const ProcessId leader = d.await_stable_leader(
      /*hold_us=*/300000, /*timeout_us=*/20000000);
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  ASSERT_NE(leader, kNoProcess) << "no stable leader within 20s";
  EXPECT_LT(leader, 3u);
}

TEST(RtDriver, BoundedAlgorithmWorksOnThreadsToo) {
  RtDriver d(quick_config(AlgoKind::kBounded, 3));
  d.start();
  const ProcessId leader = d.await_stable_leader(300000, 20000000);
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  ASSERT_NE(leader, kNoProcess);
}

TEST(RtDriver, ReelectsAfterLeaderCrash) {
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 3));
  d.start();
  const ProcessId first = d.await_stable_leader(300000, 20000000);
  ASSERT_NE(first, kNoProcess);
  d.crash(first);
  const ProcessId second = d.await_stable_leader(300000, 30000000);
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  ASSERT_NE(second, kNoProcess) << "no re-election after crash";
  EXPECT_NE(second, first);
}

TEST(RtDriver, CrashedProcessStopsWriting) {
  RtDriver d(quick_config(AlgoKind::kBounded, 2));
  d.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  d.crash(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto writes_at_crash = d.memory().instr().writes_by(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto writes_later = d.memory().instr().writes_by(1);
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  EXPECT_EQ(writes_later, writes_at_crash);
  EXPECT_GT(d.memory().instr().writes_by(0), 0u);
}

TEST(RtDriver, SingleProcessElectsItself) {
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 1));
  d.start();
  const ProcessId leader = d.await_stable_leader(100000, 5000000);
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  EXPECT_EQ(leader, 0u);
}

TEST(RtDriver, WriteEfficiencyHoldsOnRealThreads) {
  // Theorem 3 on hardware: once the leader is stable, a census window shows
  // exactly one writer — the same measurement E4 makes in the simulator,
  // here against std::atomic registers and the OS scheduler.
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 3));
  d.start();
  const ProcessId leader = d.await_stable_leader(500000, 20000000);
  ASSERT_NE(leader, kNoProcess);
  const auto before = d.memory().instr().snapshot();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const auto after = d.memory().instr().snapshot();
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  std::uint32_t writers = 0;
  for (ProcessId i = 0; i < 3; ++i) {
    if (after.writes_by[i] > before.writes_by[i]) ++writers;
  }
  EXPECT_EQ(writers, 1u) << "only the leader may write after stabilization";
  EXPECT_GT(after.writes_by[leader], before.writes_by[leader]);
  // And everyone kept reading (Lemma 6).
  for (ProcessId i = 0; i < 3; ++i) {
    EXPECT_GT(after.reads_by[i], before.reads_by[i]) << "p" << i;
  }
}

TEST(RtConsensus, DecidesOnRealThreads) {
  // The full stack on hardware: Omega (fig2) + the round-based ledger, all
  // on std::atomic registers with one thread per process. Every process
  // proposes a distinct value; all must decide the same, valid one.
  // The consensus module works over any memory backend; this test drives
  // the proposer coroutines directly from plain threads against a
  // standalone AtomicMemory, with a fixed leader answer playing the role of
  // a stabilized Omega (the sim suite exercises the anarchic phase — the
  // subject here is the ledger's safety over hardware atomics).
  constexpr std::uint32_t kN = 3;
  ConsensusInstance inst(kN);
  LayoutBuilder b;
  inst.declare(b);
  AtomicMemory mem(b.build(), kN);
  inst.bind(mem.layout());

  std::array<std::atomic<std::uint64_t>, kN> decided{};
  std::vector<std::thread> threads;
  for (ProcessId i = 0; i < kN; ++i) {
    threads.emplace_back([&, i] {
      auto* slot = &decided[i];
      ProcTask task = inst.proposer(i, 500 + i, [slot](std::uint64_t v) {
        slot->store(v, std::memory_order_release);
      });
      task.start();
      while (!task.done()) {
        switch (task.pending()) {
          case OpKind::kRead:
            task.resume(mem.read(i, task.pending_cell()));
            break;
          case OpKind::kWrite:
            mem.write(i, task.pending_cell(), task.pending_value());
            task.resume(0);
            break;
          case OpKind::kLeaderQuery:
            // A stabilized Omega: everyone already trusts p0. (The sim
            // suite exercises the anarchic phase; here the subject is the
            // ledger over hardware atomics.)
            task.resume(0);
            break;
          case OpKind::kYield:
            std::this_thread::yield();
            task.resume(0);
            break;
          default:
            task.resume(0);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::uint64_t v0 = decided[0].load();
  EXPECT_EQ(v0, 500u) << "the leader's value wins under a stable Omega";
  for (ProcessId i = 1; i < kN; ++i) {
    EXPECT_EQ(decided[i].load(), v0) << "agreement violated at p" << i;
  }
}

TEST(RtDriver, AppTasksRunAlongsideOmega) {
  // add_app_task: the app coroutine shares its process's thread with the
  // Omega tasks and its LeaderQuery is answered by the live oracle.
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 2));
  std::atomic<std::uint64_t> observed{kNoProcess};
  // A tiny app: query the oracle a few times, record the last answer.
  struct App {
    static ProcTask run(std::atomic<std::uint64_t>* out) {
      std::uint64_t last = kNoProcess;
      for (int i = 0; i < 50; ++i) {
        last = co_await LeaderQueryOp{};
        co_await YieldOp{};
      }
      out->store(last, std::memory_order_release);
    }
  };
  d.add_app_task(0, App::run(&observed));
  EXPECT_FALSE(d.apps_done());
  d.start();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (!d.apps_done() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  d.stop();
  EXPECT_FALSE(d.failed()) << d.failure_message();
  ASSERT_TRUE(d.apps_done()) << "app task did not finish";
  EXPECT_LT(observed.load(), 2u) << "oracle answers must be process ids";
}

TEST(RtDriver, AppTasksRejectedAfterStart) {
  RtDriver d(quick_config(AlgoKind::kWriteEfficient, 2));
  d.start();
  ProcTask dummy;
  EXPECT_THROW(d.add_app_task(0, std::move(dummy)), InvariantViolation);
  d.stop();
}

TEST(RtDriver, ConfigValidation) {
  RtConfig bad;
  bad.n = 0;
  EXPECT_THROW(RtDriver{bad}, InvariantViolation);
  bad.n = 2;
  bad.tick_us = 0;
  EXPECT_THROW(RtDriver{bad}, InvariantViolation);
}

}  // namespace
}  // namespace omega
