// End-to-end tests of the TCP front-end (src/net): a LeaderServer wired to
// a running MultiGroupLeaderService, exercised by blocking net::Clients
// over loopback — point queries, watches observing real fail-overs pushed
// through the epoch-listener seam, and protocol robustness against a
// misbehaving peer.
#include "net/leader_server.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include "net/client.h"

namespace omega::net {
namespace {

using svc::GroupId;
using svc::GroupSpec;
using svc::LeaderView;
using svc::MultiGroupLeaderService;
using svc::SvcConfig;

constexpr std::int64_t kAwaitUs = 30000000;  // generous: single-core CI box

SvcConfig small_pool(std::uint32_t workers) {
  SvcConfig cfg;
  cfg.workers = workers;
  cfg.tick_us = 500;
  cfg.wheel_slot_us = 256;
  cfg.wheel_slots = 128;
  cfg.ops_per_sweep = 8;
  // Leave CPU for the IO threads and clients: this box may be single-core.
  cfg.pace_us = 100;
  return cfg;
}

/// Service + server + one connected client, ready to query.
struct Rig {
  explicit Rig(std::uint32_t groups, std::uint32_t workers = 2,
               std::uint32_t io_threads = 1) {
    svc = std::make_unique<MultiGroupLeaderService>(small_pool(workers));
    for (GroupId gid = 0; gid < groups; ++gid) svc->add_group(gid);
    NetConfig net_cfg;
    net_cfg.io_threads = io_threads;
    server = std::make_unique<LeaderServer>(*svc, net_cfg);
    server->start();
    svc->start();
    for (GroupId gid = 0; gid < groups; ++gid) {
      EXPECT_NE(svc->await_leader(gid, kAwaitUs), kNoProcess)
          << "group " << gid << " never converged";
    }
    client.connect("127.0.0.1", server->port());
  }
  ~Rig() {
    client.close();
    server->stop();
    svc->stop();
  }

  std::unique_ptr<MultiGroupLeaderService> svc;
  std::unique_ptr<LeaderServer> server;
  Client client;
};

TEST(NetServer, LeaderQueriesMatchTheService) {
  Rig rig(/*groups=*/8);
  for (GroupId gid = 0; gid < 8; ++gid) {
    const Client::Result r = rig.client.leader(gid);
    ASSERT_TRUE(r.ok()) << "gid " << gid;
    EXPECT_EQ(r.gid, gid);
    EXPECT_NE(r.view.leader, kNoProcess);
    EXPECT_LT(r.view.leader, 3u);
    EXPECT_GE(r.view.epoch, 1u);
    // No crashes and already converged: the direct in-process read must
    // agree with what just crossed the wire.
    EXPECT_EQ(rig.svc->leader(gid), r.view);
  }
}

TEST(NetServer, UnknownGroupIsAnApplicationError) {
  Rig rig(/*groups=*/2);
  const Client::Result r = rig.client.leader(GroupId{999});
  EXPECT_EQ(r.status, Status::kUnknownGroup);
  EXPECT_EQ(r.gid, 999u);
  // The connection survives an application error.
  EXPECT_TRUE(rig.client.leader(GroupId{0}).ok());
  EXPECT_EQ(rig.client.watch(GroupId{999}).status, Status::kUnknownGroup);
}

TEST(NetServer, PingAndStats) {
  Rig rig(/*groups=*/4);
  rig.client.ping();
  const StatsBody s = rig.client.stats();
  EXPECT_GE(s.connections, 1u);
  EXPECT_EQ(s.groups, 4u);
  EXPECT_EQ(s.io_threads, 1u);

  rig.client.leader(GroupId{1});
  EXPECT_GE(rig.client.stats().queries, 1u);
}

TEST(NetServer, WatchObservesFailoverWithoutPolling) {
  Rig rig(/*groups=*/4);
  const GroupId gid{1};
  const Client::Result snap = rig.client.watch(gid);
  ASSERT_TRUE(snap.ok());
  ASSERT_NE(snap.view.leader, kNoProcess);

  // Induce a leader change; the only thing the client does afterwards is
  // block on the socket — any event that arrives was pushed, not polled.
  rig.svc->crash(gid, snap.view.leader);

  // The group may pass through intermediate views (no-leader, then the
  // new leader); every hop must carry a strictly larger epoch.
  std::uint64_t last_epoch = snap.view.epoch;
  for (;;) {
    const auto ev = rig.client.next_event(/*timeout_ms=*/30000);
    ASSERT_TRUE(ev.has_value()) << "no pushed event within the deadline";
    EXPECT_EQ(ev->gid, gid);
    EXPECT_GT(ev->view.epoch, last_epoch)
        << "every pushed transition must bump the fencing epoch";
    last_epoch = ev->view.epoch;
    if (ev->view.leader != kNoProcess &&
        ev->view.leader != snap.view.leader) {
      break;  // fail-over observed
    }
  }
  EXPECT_GE(rig.server->stats().events, 1u);
}

TEST(NetServer, UnwatchStopsTheStream) {
  Rig rig(/*groups=*/2);
  const GroupId gid{0};
  ASSERT_TRUE(rig.client.watch(gid).ok());
  ASSERT_TRUE(rig.client.unwatch(gid).ok());
  // Drain anything pushed between watch and unwatch before inducing the
  // change the subscriber must NOT see.
  while (rig.client.next_event(200).has_value()) {
  }
  const LeaderView v = rig.svc->leader(gid);
  ASSERT_NE(v.leader, kNoProcess);
  rig.svc->crash(gid, v.leader);
  EXPECT_FALSE(rig.client.next_event(/*timeout_ms=*/1500).has_value())
      << "events after UNWATCH";
  EXPECT_EQ(rig.server->stats().watches, 0u);
}

TEST(NetServer, ManyClientsAcrossTwoLoops) {
  // Multiple connections land on different IO threads (round-robin) and
  // each gets correct answers and its own event stream.
  Rig rig(/*groups=*/6, /*workers=*/2, /*io_threads=*/2);
  constexpr int kClients = 6;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<Client>());
    clients.back()->connect("127.0.0.1", rig.server->port());
  }
  const GroupId gid{3};
  std::uint64_t snap_epoch = 0;
  ProcessId old_leader = kNoProcess;
  for (auto& c : clients) {
    const Client::Result r = c->watch(gid);
    ASSERT_TRUE(r.ok());
    snap_epoch = r.view.epoch;
    old_leader = r.view.leader;
  }
  ASSERT_NE(old_leader, kNoProcess);
  rig.svc->crash(gid, old_leader);

  // Every watcher independently observes the fail-over.
  for (auto& c : clients) {
    std::uint64_t epoch = snap_epoch;
    for (;;) {
      const auto ev = c->next_event(30000);
      ASSERT_TRUE(ev.has_value());
      epoch = ev->view.epoch;
      if (ev->view.leader != kNoProcess && ev->view.leader != old_leader) {
        break;
      }
    }
    EXPECT_GT(epoch, snap_epoch);
  }
  EXPECT_GE(rig.server->stats().accepted, kClients + 1u);
}

TEST(NetServer, QueriesInterleaveWithWatchTraffic) {
  // A connection holding a watch can still issue point queries; pushed
  // events arriving mid-call are queued, not lost, and responses still
  // match their request ids.
  Rig rig(/*groups=*/3);
  ASSERT_TRUE(rig.client.watch(GroupId{0}).ok());
  const LeaderView v = rig.svc->leader(GroupId{0});
  rig.svc->crash(GroupId{0}, v.leader);
  // Hammer queries on other groups while the fail-over events stream in.
  for (int i = 0; i < 200; ++i) {
    const Client::Result r =
        rig.client.leader(static_cast<GroupId>(1 + (i % 2)));
    ASSERT_TRUE(r.ok());
  }
  // The events were queued behind the responses.
  const auto ev = rig.client.next_event(30000);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->gid, 0u);
}

TEST(NetServer, MalformedBytesCloseTheConnection) {
  Rig rig(/*groups=*/1);
  // Raw socket, no protocol: announce an absurd frame length.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rig.server->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  const std::uint8_t garbage[8] = {0xff, 0xff, 0xff, 0xff,
                                   0x00, 0x01, 0x02, 0x03};
  ASSERT_EQ(::send(fd, garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));
  // The server must hang up on us (read returns 0 = orderly close).
  char buf[16];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
  EXPECT_EQ(n, 0) << "server kept a corrupt connection open";
  ::close(fd);

  // And the healthy client is unaffected.
  EXPECT_TRUE(rig.client.leader(GroupId{0}).ok());
  EXPECT_GE(rig.server->stats().protocol_errors, 1u);
}

TEST(NetServer, WatchSurvivesConnectionChurn) {
  // Closing a watching connection cleans its subscriptions up server-side;
  // the next epoch change must not crash delivery or leak watch counts.
  Rig rig(/*groups=*/2);
  {
    Client ephemeral;
    ephemeral.connect("127.0.0.1", rig.server->port());
    ASSERT_TRUE(ephemeral.watch(GroupId{0}).ok());
    ASSERT_TRUE(ephemeral.watch(GroupId{1}).ok());
    ephemeral.close();
  }
  // Give the server a moment to observe the close.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rig.server->stats().watches != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(rig.server->stats().watches, 0u);

  const LeaderView v = rig.svc->leader(GroupId{0});
  rig.svc->crash(GroupId{0}, v.leader);  // delivery to nobody must be safe
  EXPECT_TRUE(rig.client.leader(GroupId{1}).ok());
}

}  // namespace
}  // namespace omega::net
