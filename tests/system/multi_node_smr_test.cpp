// Three OS processes, one replicated log: each child runs an SmrNode
// (one replica + mirror transport + TCP front-end); the parent is a pure
// protocol client. Verifies the ISSUE-5 acceptance behaviour end to end:
// appends commit on every node in FIFO order, and SIGKILL of the leader
// process elects a new leader that serves appends.
//
// fork() happens before any thread exists in this test binary (gtest
// discovery runs each TEST in its own process), so the children may
// safely construct the full threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "smr/node.h"

namespace omega::smr {
namespace {

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr svc::GroupId kGid = 42;

NodeTopology make_topology() {
  NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(NodeEndpoint{i, "127.0.0.1", pick_free_port(),
                                      pick_free_port()});
  }
  return topo;
}

SmrSpec test_spec() {
  SmrSpec spec;
  spec.n = 3;
  spec.capacity = 512;
  spec.window = 4;
  spec.max_batch = 8;
  return spec;
}

/// Child body: build the node, run until killed.
[[noreturn]] void run_node(const NodeTopology& base, std::uint32_t self) {
  try {
    NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    // Millisecond-scale ticks: cross-process heartbeats ride TCP, and on
    // a shared single-core box the monitors need margin over scheduling
    // noise. Adaptive pace keeps three idle nodes off the one core.
    scfg.tick_us = 1000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    SmrNode node(topo, scfg);
    node.add_log(kGid, test_spec());
    node.start();
    for (;;) {
      // A failed group (model violation) would otherwise stall silently:
      // surface it loudly so a stuck parent-side deadline is diagnosable.
      if (node.service().failed()) {
        std::fprintf(stderr, "node %u FAILED: %s\n", self,
                     node.service().failure_message().c_str());
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node %u threw: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

class Cluster {
 public:
  Cluster() : topo_(make_topology()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const pid_t pid = fork();
      if (pid == 0) run_node(topo_, i);
      pids_.push_back(pid);
    }
  }

  ~Cluster() {
    for (const pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  const NodeTopology& topo() const { return topo_; }

  void kill_node(std::uint32_t node) {
    ::kill(pids_[node], SIGKILL);
    ::waitpid(pids_[node], nullptr, 0);
    pids_[node] = -1;
    dead_.push_back(node);
  }

  bool alive(std::uint32_t node) const { return pids_[node] > 0; }

  /// Blocking connect with retries (children need time to bind+serve).
  void connect(net::Client& c, std::uint32_t node, int deadline_s = 60) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    for (;;) {
      try {
        c.connect("127.0.0.1", topo_.nodes[node].serve_port, 2000);
        c.enable_auto_reconnect();
        return;
      } catch (const net::NetError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  /// Waits until some ALIVE node reports an agreed leader hosted on an
  /// alive node; returns the leader's replica id (kNoProcess on timeout).
  ProcessId await_leader(int deadline_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint32_t node = 0; node < 3; ++node) {
        if (!alive(node)) continue;
        try {
          net::Client c;
          connect(c, node, 5);
          const auto r = c.leader(kGid);
          if (r.ok() && r.view.leader != kNoProcess &&
              alive(topo_.node_of(r.view.leader))) {
            return r.view.leader;
          }
        } catch (const net::NetError&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return kNoProcess;
  }

 private:
  NodeTopology topo_;
  std::vector<pid_t> pids_;
  std::vector<std::uint32_t> dead_;
};

/// Appends via whatever node currently leads, following NotLeader hints.
void append_until_committed(Cluster& cluster, std::uint64_t client,
                            std::uint64_t seq, std::uint64_t cmd,
                            int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const ProcessId leader = cluster.await_leader(deadline_s);
    ASSERT_NE(leader, kNoProcess) << "no leader elected in time";
    const std::uint32_t node = cluster.topo().node_of(leader);
    try {
      net::Client c;
      cluster.connect(c, node, 10);
      const auto r = c.append_retry(kGid, client, seq, cmd, 15000);
      if (r.ok()) return;
    } catch (const net::NetError&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  FAIL() << "append of " << cmd << " did not commit in " << deadline_s
         << "s";
}

TEST(MultiNodeSmr, FifoCommitsOnAllNodesAndSigkillFailover) {
  Cluster cluster;

  // Phase 1: a stable leader emerges across three OS processes (the Ω
  // heartbeats travel the register mirror).
  const ProcessId first_leader = cluster.await_leader(120);
  ASSERT_NE(first_leader, kNoProcess);

  // Phase 2: a batch of appends commits...
  constexpr std::uint64_t kFirst = 20;
  for (std::uint64_t i = 0; i < kFirst; ++i) {
    append_until_committed(cluster, /*client=*/1, /*seq=*/1 + i, 500 + i,
                           120);
  }

  // ...and becomes visible on EVERY node, in FIFO order (followers apply
  // through their mirrors).
  for (std::uint32_t node = 0; node < 3; ++node) {
    net::Client c;
    cluster.connect(c, node);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    net::Client::LogView page;
    for (;;) {
      page = c.read_log(kGid, 0, 256);
      if (page.status == net::Status::kOk && page.commit_index >= kFirst) {
        break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "node " << node << " never caught up (commit_index "
          << page.commit_index << ")";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ASSERT_GE(page.entries.size(), kFirst);
    for (std::uint64_t i = 0; i < kFirst; ++i) {
      EXPECT_EQ(page.entries[i], 500 + i)
          << "node " << node << " diverges at index " << i;
    }
  }

  // Phase 3: SIGKILL the leader's process; the survivors must elect a
  // new leader that serves appends.
  const std::uint32_t dead = cluster.topo().node_of(first_leader);
  cluster.kill_node(dead);
  for (std::uint64_t i = 0; i < 5; ++i) {
    append_until_committed(cluster, /*client=*/2, /*seq=*/1 + i, 900 + i,
                           180);
  }

  // The surviving nodes agree on the full log, old prefix intact.
  std::vector<std::uint64_t> logs[3];
  for (std::uint32_t node = 0; node < 3; ++node) {
    if (!cluster.alive(node)) continue;
    net::Client c;
    cluster.connect(c, node);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
      const auto page = c.read_log(kGid, 0, 256);
      if (page.status == net::Status::kOk &&
          page.commit_index >= kFirst + 5) {
        logs[node] = page.entries;
        break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "survivor " << node << " never converged";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    for (std::uint64_t i = 0; i < kFirst; ++i) {
      EXPECT_EQ(logs[node][i], 500 + i) << "prefix rewritten on " << node;
    }
  }
  std::vector<const std::vector<std::uint64_t>*> survivors;
  for (std::uint32_t node = 0; node < 3; ++node) {
    if (cluster.alive(node)) survivors.push_back(&logs[node]);
  }
  ASSERT_EQ(survivors.size(), 2u);
  const std::size_t common =
      std::min(survivors[0]->size(), survivors[1]->size());
  for (std::size_t i = 0; i < common; ++i) {
    EXPECT_EQ((*survivors[0])[i], (*survivors[1])[i])
        << "survivors disagree at index " << i;
  }
}

}  // namespace
}  // namespace omega::smr
