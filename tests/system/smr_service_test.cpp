// End-to-end tests of the live replicated state machine (src/smr): TCP
// appends through LeaderServer -> SmrService -> LogPump -> consensus slots
// on real AtomicMemory, client-retry idempotency via (client, seq) dedup
// keys, replica agreement on the decision boards, commit-watch pushes, and
// survival of a leader crash mid-stream.
#include "smr/smr_service.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <thread>

#include "net/client.h"
#include "net/leader_server.h"

namespace omega::smr {
namespace {

using svc::GroupId;
using svc::MultiGroupLeaderService;
using svc::SvcConfig;

constexpr std::int64_t kAwaitUs = 60000000;  // generous: single-core CI box

SvcConfig fast_pool() {
  SvcConfig cfg;
  cfg.workers = 2;
  cfg.tick_us = 20000;  // 20ms detection granularity: fast failover tests
  cfg.wheel_slot_us = 1024;
  cfg.wheel_slots = 256;
  cfg.ops_per_sweep = 32;
  cfg.pace_us = 100;  // leave CPU for IO threads + clients on small boxes
  return cfg;
}

/// Service + smr + server + ready log group.
struct Rig {
  explicit Rig(GroupId gid, SmrSpec spec = {}) : gid_(gid) {
    svc = std::make_unique<MultiGroupLeaderService>(fast_pool());
    smr = std::make_unique<SmrService>(*svc);
    smr->add_log(gid, spec);
    net::NetConfig net_cfg;
    net_cfg.io_threads = 1;
    server = std::make_unique<net::LeaderServer>(*svc, net_cfg);
    server->serve_log(*smr);
    server->start();
    svc->start();
    EXPECT_NE(svc->await_leader(gid, kAwaitUs), kNoProcess)
        << "log group must elect a leader";
  }

  ~Rig() {
    server->stop();
    svc->stop();
  }

  void connect(net::Client& c) { c.connect("127.0.0.1", server->port()); }

  GroupId gid_;
  std::unique_ptr<MultiGroupLeaderService> svc;
  std::unique_ptr<SmrService> smr;
  std::unique_ptr<net::LeaderServer> server;
};

TEST(SmrService, AppendsCommitInOrderAndReadBack) {
  Rig rig(1);
  net::Client c;
  rig.connect(c);
  for (std::uint64_t seq = 0; seq < 20; ++seq) {
    const auto r = c.append_retry(1, /*client=*/7, seq, 100 + seq,
                                  /*timeout_ms=*/60000);
    ASSERT_TRUE(r.ok()) << "append " << seq << " status "
                        << static_cast<int>(r.status);
    EXPECT_EQ(r.index, seq) << "commits must be dense and ordered";
  }
  const auto page = c.read_log(1, 0, 256);
  ASSERT_EQ(page.status, net::Status::kOk);
  EXPECT_EQ(page.commit_index, 20u);
  ASSERT_EQ(page.entries.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(page.entries[i], 100 + i) << "entry " << i;
  }
}

TEST(SmrService, DedupMakesClientRetriesIdempotent) {
  Rig rig(2);
  net::Client c;
  rig.connect(c);
  const auto first = c.append_retry(2, /*client=*/9, /*seq=*/5, 42, 60000);
  ASSERT_TRUE(first.ok());
  // A retry of the same (client, seq) — as after a lost ack — must return
  // the original commit index and MUST NOT append a second copy.
  const auto retry = c.append(2, 9, 5, 42);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.index, first.index);
  // An older seq is outside the dedup window: rejected as stale.
  const auto stale = c.append(2, 9, 4, 41);
  EXPECT_EQ(stale.status, net::Status::kStaleSeq);
  // The log holds exactly one copy.
  const auto page = c.read_log(2, 0, 256);
  EXPECT_EQ(page.commit_index, 1u);
  ASSERT_EQ(page.entries.size(), 1u);
  EXPECT_EQ(page.entries[0], 42u);
}

TEST(SmrService, ReplicasAgreeOnEveryDecidedSlot) {
  Rig rig(3);
  net::Client c;
  rig.connect(c);
  constexpr std::uint64_t kAppends = 30;
  for (std::uint64_t seq = 0; seq < kAppends; ++seq) {
    ASSERT_TRUE(c.append_retry(3, 11, seq, 1 + (seq % 65533), 60000).ok());
  }
  // Every replica's decision board must name the same value for every
  // decided slot (agreement), and the decided prefix must equal the
  // applied log (validity of the apply order).
  const auto page = c.read_log(3, 0, 256);
  ASSERT_EQ(page.entries.size(), kAppends);
  for (std::uint32_t slot = 0; slot < kAppends; ++slot) {
    std::optional<std::uint64_t> agreed;
    for (ProcessId pid = 0; pid < 3; ++pid) {
      const auto d = rig.smr->decided_by(3, pid, slot);
      if (!d.has_value()) continue;  // this replica is a laggard here
      if (agreed.has_value()) {
        EXPECT_EQ(*agreed, *d) << "replicas disagree on slot " << slot;
      }
      agreed = d;
    }
    ASSERT_TRUE(agreed.has_value()) << "slot " << slot << " undecided";
    EXPECT_EQ(*agreed, page.entries[slot])
        << "applied entry diverges from the decision board at " << slot;
  }
}

TEST(SmrService, SurvivesLeaderCrashMidStream) {
  Rig rig(4);
  net::Client c;
  rig.connect(c);
  c.enable_auto_reconnect();
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(c.append_retry(4, 13, seq, 200 + seq, 60000).ok());
  }
  const ProcessId doomed = rig.svc->leader(4).leader;
  ASSERT_NE(doomed, kNoProcess);
  rig.svc->crash(4, doomed);
  // Appends keep working through kNotLeader retries; the dedup key keeps
  // them idempotent even if a pre-crash submission actually committed.
  for (std::uint64_t seq = 5; seq < 10; ++seq) {
    const auto r = c.append_retry(4, 13, seq, 200 + seq, 60000);
    ASSERT_TRUE(r.ok()) << "post-crash append " << seq;
  }
  const auto page = c.read_log(4, 0, 256);
  EXPECT_EQ(page.commit_index, 10u);
  ASSERT_EQ(page.entries.size(), 10u);
  std::set<std::uint64_t> seen(page.entries.begin(), page.entries.end());
  EXPECT_EQ(seen.size(), 10u) << "no duplicates under crash + retry";
  EXPECT_NE(rig.svc->leader(4).leader, doomed) << "a new leader took over";
}

TEST(SmrService, CommitWatchPushesAppliedEntries) {
  Rig rig(5);
  net::Client watcher;
  rig.connect(watcher);
  const auto snap = watcher.commit_watch(5);
  ASSERT_TRUE(snap.ok());
  const std::uint64_t base = snap.index;

  net::Client writer;
  rig.connect(writer);
  std::thread appender([&] {
    for (std::uint64_t seq = 0; seq < 4; ++seq) {
      ASSERT_TRUE(writer.append_retry(5, 17, seq, 300 + seq, 60000).ok());
    }
  });
  // Every applied entry must arrive as a push, in order, without the
  // watcher sending a byte.
  std::uint64_t expect_index = base;
  while (expect_index < base + 4) {
    const auto ev = watcher.next_event(/*timeout_ms=*/60000);
    ASSERT_TRUE(ev.has_value()) << "push timed out at " << expect_index;
    if (ev->kind != net::Client::Event::Kind::kCommit) continue;
    ASSERT_EQ(ev->gid, 5u);
    EXPECT_EQ(ev->index, expect_index);
    EXPECT_EQ(ev->value, 300 + (expect_index - base));
    ++expect_index;
  }
  appender.join();
  // Unsubscribe and verify silence.
  ASSERT_EQ(watcher.commit_unwatch(5).status, net::Status::kOk);
  ASSERT_TRUE(writer.append_retry(5, 17, 4, 304, 60000).ok());
  const auto quiet = watcher.next_event(/*timeout_ms=*/300);
  EXPECT_FALSE(quiet.has_value()) << "no pushes after commit_unwatch";
}

TEST(SmrService, RejectsBadAndUnknownTraffic) {
  Rig rig(6);
  net::Client c;
  rig.connect(c);
  // Unknown group.
  EXPECT_EQ(c.append(99, 1, 0, 7).status, net::Status::kUnknownGroup);
  EXPECT_EQ(c.read_log(99, 0, 16).status, net::Status::kUnknownGroup);
  EXPECT_EQ(c.commit_watch(99).status, net::Status::kUnknownGroup);
  // Command outside the 16-bit consensus value range.
  EXPECT_EQ(c.append(6, 1, 0, 0).status, net::Status::kBadRequest);
  EXPECT_EQ(c.append(6, 1, 0, 1u << 20).status, net::Status::kBadRequest);
  // The connection survived all of it.
  c.ping();
}

TEST(SmrService, BatchedAppendsCommitFifoThroughPipelinedClient) {
  SmrSpec spec;
  spec.capacity = 256;
  spec.window = 4;
  spec.max_batch = 8;
  Rig rig(8, spec);
  net::Client c;
  rig.connect(c);
  // Pipeline 24 appends on one connection: the queue backs up while slots
  // are in flight, so the pump seals multi-command batches; commits must
  // still land dense and in submission order.
  constexpr std::uint64_t kAppends = 24;
  std::vector<std::uint64_t> req_ids;
  for (std::uint64_t seq = 0; seq < kAppends; ++seq) {
    req_ids.push_back(c.append_async(8, /*client=*/21, seq, 500 + seq));
  }
  EXPECT_EQ(c.outstanding_appends(), kAppends);
  std::map<std::uint64_t, net::Client::AppendResult> results;
  while (results.size() < kAppends) {
    const auto a = c.next_append_result(/*timeout_ms=*/60000);
    ASSERT_TRUE(a.has_value()) << "append ack timed out at "
                               << results.size();
    results[a->req_id] = a->result;
  }
  EXPECT_EQ(c.outstanding_appends(), 0u);
  for (std::uint64_t seq = 0; seq < kAppends; ++seq) {
    const auto& r = results[req_ids[seq]];
    ASSERT_EQ(r.status, net::Status::kOk) << "append " << seq;
    EXPECT_EQ(r.index, seq) << "one client's pipelined appends commit in "
                               "submission order at dense indexes";
  }
  const auto page = c.read_log(8, 0, 256);
  ASSERT_EQ(page.commit_index, kAppends);
  for (std::uint64_t i = 0; i < kAppends; ++i) {
    EXPECT_EQ(page.entries[i], 500 + i);
  }
  // The decided slots carry batch descriptors; fewer slots than commands
  // proves at least one multi-command batch was sealed (with 24 appends
  // racing a window of 4 that is overwhelmingly certain, but a fully
  // unbatched run is still *correct* — only assert the slot arithmetic).
  std::uint32_t decided_slots = 0;
  for (std::uint32_t slot = 0; slot < spec.capacity; ++slot) {
    bool any = false;
    for (ProcessId pid = 0; pid < spec.n && !any; ++pid) {
      any = rig.smr->decided_by(8, pid, slot).has_value();
    }
    if (!any) break;
    ++decided_slots;
  }
  EXPECT_GE(decided_slots, 1u);
  EXPECT_LE(decided_slots, kAppends);
}

TEST(SmrService, RetryAcrossBatchesIsStillDeduplicated) {
  SmrSpec spec;
  spec.capacity = 256;
  spec.window = 2;
  spec.max_batch = 4;
  Rig rig(9, spec);
  // Submit straight into the service (synchronous enqueue): ten seqs of
  // client 31 land in order and will spread over several batches.
  constexpr std::uint64_t kAppends = 10;
  std::array<std::atomic<std::int64_t>, kAppends> ack_index;
  for (auto& a : ack_index) a.store(-1);
  for (std::uint64_t seq = 0; seq < kAppends; ++seq) {
    rig.smr->append(9, /*client=*/31, seq, 700 + seq,
                    [&ack_index, seq](AppendOutcome oc, std::uint64_t idx) {
                      ASSERT_EQ(oc, AppendOutcome::kCommitted);
                      ack_index[seq].store(static_cast<std::int64_t>(idx));
                    });
  }
  // Retry the newest seq immediately — the classic lost-ack resubmit.
  // The original is pending, inside an in-flight batch, or already
  // committed in an earlier batch than any the retry could join; in every
  // case the retry must resolve to the same single commit.
  std::atomic<std::int64_t> retry_index{-1};
  rig.smr->append(9, 31, kAppends - 1, 700 + kAppends - 1,
                  [&retry_index](AppendOutcome oc, std::uint64_t idx) {
                    ASSERT_EQ(oc, AppendOutcome::kCommitted);
                    retry_index.store(static_cast<std::int64_t>(idx));
                  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  auto all_acked = [&] {
    for (const auto& a : ack_index) {
      if (a.load() < 0) return false;
    }
    return retry_index.load() >= 0;
  };
  while (!all_acked() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(all_acked()) << "appends did not all commit in time";
  for (std::uint64_t seq = 0; seq < kAppends; ++seq) {
    EXPECT_EQ(ack_index[seq].load(), static_cast<std::int64_t>(seq));
  }
  EXPECT_EQ(retry_index.load(), static_cast<std::int64_t>(kAppends - 1))
      << "the retry must learn the original's index, not a new one";
  // Exactly one copy per seq in the log.
  LogGroup::Snapshot snap;
  ASSERT_TRUE(rig.smr->read_log(9, 0, 256, snap));
  EXPECT_EQ(snap.commit_index, kAppends);
  ASSERT_EQ(snap.entries.size(), kAppends);
  for (std::uint64_t i = 0; i < kAppends; ++i) {
    EXPECT_EQ(snap.entries[i], 700 + i) << "no duplicate from the retry";
  }
}

TEST(SmrService, IdleSessionsAreEvictedAndCounted) {
  SmrSpec spec;
  spec.capacity = 64;
  // Generous TTL: it must exceed the worst-case gap between the two
  // appends on slow (TSan) runners or client 41 idles out before the
  // sessions==2 assertion; the test still finishes in a few seconds.
  spec.session_ttl_us = 3000000;
  Rig rig(10, spec);
  net::Client c;
  rig.connect(c);
  ASSERT_TRUE(c.append_retry(10, /*client=*/41, 0, 11, 60000).ok());
  ASSERT_TRUE(c.append_retry(10, /*client=*/42, 0, 12, 60000).ok());
  EXPECT_EQ(rig.smr->queue_stats(10).sessions, 2u);
  // Both clients go idle; the pump sweep expires them.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (rig.smr->queue_stats(10).sessions > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto stats = rig.smr->queue_stats(10);
  EXPECT_EQ(stats.sessions, 0u) << "idle sessions must expire";
  EXPECT_EQ(stats.evicted, 2u);
  // An evicted client keeps working — its next submission opens a fresh
  // session (and a replayed old seq is accepted as new: the TTL tradeoff).
  ASSERT_TRUE(c.append_retry(10, 41, 0, 13, 60000).ok());
  EXPECT_EQ(rig.smr->queue_stats(10).sessions, 1u);
}

TEST(SmrService, SessionOpenHandshakeAndExplicitEviction) {
  SmrSpec spec;
  spec.capacity = 64;
  spec.session_ttl_us = 1500000;  // 1.5s: evictable within the test
  Rig rig(11, spec);
  net::Client c;
  rig.connect(c);

  // The handshake reports the TTL and licenses mid-stream seqs.
  const auto info = c.open_session(11, /*client=*/77);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.ttl_us, spec.session_ttl_us);
  ASSERT_TRUE(c.append_retry(11, 77, /*seq=*/5, /*command=*/21, 60000).ok());

  // Without a session, a mid-stream seq is refused explicitly — the
  // client must know its retry window is gone, not double-commit.
  const auto refused = c.append(11, /*client=*/78, /*seq=*/9, 22);
  EXPECT_EQ(refused.status, net::Status::kSessionEvicted);

  // Go idle past the TTL (any append would restamp the session): once
  // the pump sweep evicts it, the next mid-stream append answers
  // kSessionEvicted until the client re-opens.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (rig.smr->queue_stats(11).sessions > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "session never evicted";
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const auto late = c.append(11, 77, /*seq=*/6, /*command=*/23);
  EXPECT_EQ(late.status, net::Status::kSessionEvicted)
      << "the lost retry window must be explicit";
  ASSERT_TRUE(c.open_session(11, 77).ok());
  EXPECT_TRUE(c.append_retry(11, 77, /*seq=*/100, /*command=*/24, 60000).ok())
      << "re-opened session must accept fresh seqs";
}

TEST(SmrService, CommitWatchSurvivesReconnect) {
  Rig rig(12);
  net::Client c;
  rig.connect(c);
  c.enable_auto_reconnect();
  ASSERT_TRUE(c.commit_watch(12).ok());
  // The connection dies (server restart, timeout, desync — close() is
  // the deterministic stand-in); the next call redials AND re-issues the
  // subscription, so the commit push for the new append still arrives.
  c.close();
  ASSERT_TRUE(c.append_retry(12, /*client=*/5, /*seq=*/1, /*command=*/31,
                             60000)
                  .ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool saw = false;
  while (!saw && std::chrono::steady_clock::now() < deadline) {
    const auto ev = c.next_event(/*timeout_ms=*/500);
    if (ev.has_value() && ev->kind == net::Client::Event::Kind::kCommit &&
        ev->value == 31) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw) << "the re-subscribed watch must push the commit";
}

TEST(SmrService, LeaseReadAnswersAtMemorySpeed) {
  SmrSpec spec;
  spec.capacity = 64;
  spec.lease_ttl_us = 200000;  // 200ms lease, heartbeat every 50ms
  spec.lease_skew_us = 10000;
  Rig rig(13, spec);
  net::Client c;
  rig.connect(c);
  ASSERT_TRUE(c.append_retry(13, /*client=*/3, /*seq=*/0, /*command=*/77,
                             60000)
                  .ok());
  // The first reads may race lease acquisition (a heartbeat must
  // quorum-confirm first) and answer kNotLeader; once the lease is
  // valid, reads answer kLeaseRead from the apply-time hash index.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  net::Client::ReadResult r;
  for (;;) {
    r = c.read(13, /*key=*/77);
    if (r.status == net::Status::kLeaseRead) break;
    ASSERT_EQ(r.status, net::Status::kNotLeader)
        << "pre-lease reads must refuse, got " << static_cast<int>(r.status);
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "lease never became valid";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(r.index, 1u) << "applied position 0 rides as index 1";
  EXPECT_GE(r.commit_index, 1u);
  EXPECT_EQ(r.view.epoch, rig.svc->leader(13).epoch);
  // A key never applied answers index 0 under the same lease.
  const auto absent = c.read(13, /*key=*/12345);
  EXPECT_EQ(absent.status, net::Status::kLeaseRead);
  EXPECT_EQ(absent.index, 0u);
  // Pipelined reads share the connection with appends.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(c.read_async(13, 77));
  EXPECT_EQ(c.outstanding_reads(), 8u);
  for (int i = 0; i < 8; ++i) {
    const auto a = c.next_read_result(/*timeout_ms=*/60000);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(a->result.ok());
    EXPECT_EQ(a->result.index, 1u);
  }
  EXPECT_EQ(c.outstanding_reads(), 0u);
}

TEST(SmrService, SkewedClockConfigRefusesLeaseReads) {
  SmrSpec spec;
  spec.capacity = 64;
  spec.lease_ttl_us = 100000;
  spec.lease_skew_us = 100000;  // skew >= ttl: leases unacquirable
  Rig rig(14, spec);
  net::Client c;
  rig.connect(c);
  ASSERT_TRUE(c.append_retry(14, 3, 0, 55, 60000).ok());
  // Give the lease machinery several heartbeat cadences to (wrongly)
  // acquire; every read must keep refusing — the configured behaviour
  // for clocks that cannot be trusted inside the TTL. The committed
  // value still rides along as an explicitly-unverified hint.
  for (int i = 0; i < 10; ++i) {
    const auto r = c.read(14, 55);
    EXPECT_EQ(r.status, net::Status::kNotLeader)
        << "skew >= ttl must never answer a lease read";
    EXPECT_FALSE(r.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
}

TEST(SmrService, ReadsFallBackToCommittedWhenLeasesAreOff) {
  Rig rig(15);  // default spec: lease_ttl_us = 0
  net::Client c;
  rig.connect(c);
  ASSERT_TRUE(c.append_retry(15, 3, 0, 66, 60000).ok());
  const auto r = c.read(15, 66);
  EXPECT_EQ(r.status, net::Status::kOk) << "leases off: committed read";
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.index, 1u);
  // Unknown group refuses crisply; the connection survives.
  EXPECT_EQ(c.read(99, 1).status, net::Status::kUnknownGroup);
  c.ping();
}

TEST(SmrService, ReadLogAllPagesThroughTheWholeLog) {
  SmrSpec spec;
  spec.capacity = 512;
  Rig rig(16, spec);
  net::Client c;
  rig.connect(c);
  // 300 entries: more than one kMaxLogEntries page, pipelined for speed.
  constexpr std::uint64_t kAppends = 300;
  for (std::uint64_t seq = 0; seq < kAppends; ++seq) {
    c.append_async(16, /*client=*/5, seq, 1 + (seq % 65533));
  }
  std::size_t acked = 0;
  while (acked < kAppends) {
    const auto a = c.next_append_result(/*timeout_ms=*/60000);
    ASSERT_TRUE(a.has_value()) << "append ack timed out at " << acked;
    ASSERT_EQ(a->result.status, net::Status::kOk);
    ++acked;
  }
  const auto all = c.read_log_all(16);
  ASSERT_EQ(all.status, net::Status::kOk);
  EXPECT_EQ(all.commit_index, kAppends);
  ASSERT_EQ(all.entries.size(), kAppends);
  for (std::uint64_t i = 0; i < kAppends; ++i) {
    ASSERT_EQ(all.entries[i], 1 + (i % 65533)) << "entry " << i;
  }
  // The budget caps the page walk mid-log instead of looping forever.
  const auto capped = c.read_log_all(16, /*max_entries=*/100);
  EXPECT_EQ(capped.entries.size(), 100u);
  EXPECT_EQ(capped.commit_index, kAppends);
}

TEST(SmrService, ReadRouterAnswersAndKeepsItsFloor) {
  SmrSpec spec;
  spec.capacity = 64;
  spec.lease_ttl_us = 200000;
  spec.lease_skew_us = 10000;
  Rig rig(17, spec);
  net::Client writer;
  rig.connect(writer);
  ASSERT_TRUE(writer.append_retry(17, 3, 0, 88, 60000).ok());
  net::ReadRouter router(
      {{"127.0.0.1", rig.server->port()}, {"127.0.0.1", rig.server->port()}});
  // The router retries through refusals while the lease acquires, and
  // records the answer's commit_index as the session floor.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const auto r = router.read(17, 88, /*response_timeout_ms=*/60000);
    if (r.ok()) {
      EXPECT_EQ(r.index, 1u);
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "router never got an answer";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(router.session_floor(), 1u)
      << "an answered read must raise the monotonic floor";
}

TEST(SmrService, LogFullIsReportedNotHung) {
  SmrSpec tiny;
  tiny.capacity = 4;
  tiny.window = 2;
  Rig rig(7, tiny);
  net::Client c;
  rig.connect(c);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    ASSERT_TRUE(c.append_retry(7, 3, seq, 10 + seq, 60000).ok());
  }
  // Capacity exhausted: the answer is a prompt kLogFull, not a hang.
  const auto full = c.append(7, 3, 4, 99);
  EXPECT_EQ(full.status, net::Status::kLogFull);
  const auto page = c.read_log(7, 0, 16);
  EXPECT_EQ(page.commit_index, 4u);
}

}  // namespace
}  // namespace omega::smr
