// Consensus on top of Ω: Agreement, Validity, Termination, under the same
// adversarial grid the oracle itself is tested with. This is the paper's
// "Ω is the weakest failure detector for consensus" motivation made
// executable.
#include "consensus/consensus.h"

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "sim/scenario.h"

namespace omega {
namespace {

struct ConsensusRun {
  std::unique_ptr<SimDriver> driver;
  ConsensusInstance instance;
  std::vector<std::optional<std::uint64_t>> decided;

  ConsensusRun(ScenarioConfig cfg, std::vector<std::uint64_t> proposals)
      : instance(cfg.n), decided(cfg.n) {
    cfg.extra_registers = [this](LayoutBuilder& b) { instance.declare(b); };
    driver = make_scenario(cfg);
    instance.bind(driver->memory().layout());
    for (ProcessId i = 0; i < cfg.n; ++i) {
      auto* slot = &decided[i];
      driver->add_app_task(
          i, instance.proposer(i, proposals[i],
                               [slot](std::uint64_t v) { *slot = v; }));
    }
  }

  /// Runs until every never-halting process's proposer finished.
  bool run_to_completion(SimTime deadline) {
    while (driver->now() < deadline) {
      bool done = true;
      for (ProcessId i = 0; i < driver->n(); ++i) {
        if (driver->plan().halt_time(i) != kNever) continue;
        if (!driver->apps_done(i)) done = false;
      }
      if (done) return true;
      driver->run_for(2000);
    }
    return false;
  }
};

std::vector<std::uint64_t> distinct_proposals(std::uint32_t n) {
  std::vector<std::uint64_t> p;
  for (std::uint32_t i = 0; i < n; ++i) p.push_back(100 + i);
  return p;
}

void check_agreement_validity(const ConsensusRun& run,
                              const std::vector<std::uint64_t>& proposals) {
  std::optional<std::uint64_t> agreed;
  for (ProcessId i = 0; i < run.driver->n(); ++i) {
    if (run.driver->plan().halt_time(i) != kNever) continue;
    ASSERT_TRUE(run.decided[i].has_value()) << "p" << i << " never decided";
    if (!agreed) {
      agreed = run.decided[i];
    } else {
      EXPECT_EQ(*run.decided[i], *agreed) << "agreement violated at p" << i;
    }
  }
  ASSERT_TRUE(agreed.has_value());
  // Validity: the decision is someone's proposal (possibly a crashed
  // process's — its ballot survives in the shared ledger).
  EXPECT_NE(std::find(proposals.begin(), proposals.end(), *agreed),
            proposals.end())
      << "decided value " << *agreed << " was never proposed";
}

struct GridCase {
  AlgoKind algo;
  World world;
  std::uint32_t crashes;
  std::uint64_t seed;
};

class ConsensusGridTest : public testing::TestWithParam<GridCase> {};

TEST_P(ConsensusGridTest, AgreementValidityTermination) {
  const GridCase& g = GetParam();
  ScenarioConfig cfg;
  cfg.algo = g.algo;
  cfg.n = 5;
  cfg.world = g.world;
  cfg.crashes = g.crashes;
  cfg.crash_window = 30000;  // crashes can hit mid-proposal
  cfg.seed = g.seed;
  const auto proposals = distinct_proposals(cfg.n);
  ConsensusRun run(cfg, proposals);
  ASSERT_TRUE(run.run_to_completion(2000000))
      << "consensus did not terminate: " << cfg.label();
  check_agreement_validity(run, proposals);
}

std::vector<GridCase> consensus_grid() {
  std::vector<GridCase> out;
  for (AlgoKind algo : {AlgoKind::kWriteEfficient, AlgoKind::kBounded,
                        AlgoKind::kNwnr, AlgoKind::kStepClock}) {
    for (World world : {World::kAwb, World::kEs}) {
      for (std::uint32_t crashes : {0u, 2u}) {
        for (std::uint64_t seed : {3ull, 7ull}) {
          out.push_back({algo, world, crashes, seed});
        }
      }
    }
  }
  // Consensus must also terminate under the unbounded-relative-speed
  // adversary (the AWB algorithms keep Ω stable there; the zero-delay
  // bursts merely re-order the ledger races).
  for (AlgoKind algo : {AlgoKind::kWriteEfficient, AlgoKind::kBounded}) {
    for (std::uint64_t seed : {3ull, 7ull}) {
      out.push_back({algo, World::kAdversarialAwb, 0, seed});
    }
  }
  return out;
}

std::string grid_name(const testing::TestParamInfo<GridCase>& info) {
  std::string s = std::string(algo_name(info.param.algo)) + "_" +
                  world_name(info.param.world) + "_c" +
                  std::to_string(info.param.crashes) + "_s" +
                  std::to_string(info.param.seed);
  for (char& ch : s) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Grid, ConsensusGridTest,
                         testing::ValuesIn(consensus_grid()), grid_name);

TEST(Consensus, AllProposeSameValue) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.world = World::kSync;
  ConsensusRun run(cfg, {42, 42, 42, 42});
  ASSERT_TRUE(run.run_to_completion(500000));
  for (ProcessId i = 0; i < 4; ++i) {
    EXPECT_EQ(run.decided[i], std::optional<std::uint64_t>(42));
  }
}

TEST(Consensus, DecisionBoardMatchesCallbacks) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.world = World::kAwb;
  const auto proposals = distinct_proposals(cfg.n);
  ConsensusRun run(cfg, proposals);
  ASSERT_TRUE(run.run_to_completion(1000000));
  for (ProcessId i = 0; i < 4; ++i) {
    std::uint64_t board = 0;
    ASSERT_TRUE(run.instance.read_decision(run.driver->memory(), i, board));
    EXPECT_EQ(board, *run.decided[i]);
  }
}

TEST(Consensus, SurvivesLeaderCrashMidProtocol) {
  // Crash the initially elected leader while proposals are in flight; the
  // survivors must still decide a single valid value.
  ScenarioConfig cfg;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.timely = 3;
  cfg.seed = 17;
  const auto proposals = distinct_proposals(cfg.n);
  ConsensusRun run(cfg, proposals);
  run.driver->run_until(5000);
  // Whoever is currently in charge gets killed.
  const ProcessId boss = run.driver->query_leader(3);
  if (boss != 3) {  // keep the timely process alive
    run.driver->plan() = CrashPlan::at(5, {{boss, 6000}});
  }
  ASSERT_TRUE(run.run_to_completion(2000000));
  check_agreement_validity(run, proposals);
}

TEST(Consensus, ManySeedsNoDisagreementEver) {
  // Safety hammer: agreement must hold for every seed, not just the lucky
  // ones. (Termination is asserted too — Ω makes it guaranteed.)
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.world = World::kAwb;
    cfg.seed = seed;
    const auto proposals = distinct_proposals(cfg.n);
    ConsensusRun run(cfg, proposals);
    ASSERT_TRUE(run.run_to_completion(2000000)) << "seed " << seed;
    check_agreement_validity(run, proposals);
  }
}

TEST(Consensus, RejectsOutOfRangeValues) {
  ConsensusInstance inst(3);
  LayoutBuilder b;
  inst.declare(b);
  const Layout layout = b.build();
  inst.bind(layout);
  EXPECT_THROW(inst.proposer(0, 0, [](std::uint64_t) {}),
               InvariantViolation);
  EXPECT_THROW(inst.proposer(0, kMaxConsensusValue + 1, [](std::uint64_t) {}),
               InvariantViolation);
  EXPECT_THROW(inst.proposer(9, 1, [](std::uint64_t) {}), InvariantViolation);
}

TEST(Consensus, LifecycleEnforced) {
  ConsensusInstance inst(3);
  EXPECT_THROW(inst.proposer(0, 1, [](std::uint64_t) {}), InvariantViolation);
  LayoutBuilder b;
  inst.declare(b);
  EXPECT_THROW(inst.declare(b), InvariantViolation);
  const Layout layout = b.build();
  EXPECT_THROW(inst.proposer(0, 1, [](std::uint64_t) {}), InvariantViolation);
  inst.bind(layout);
  EXPECT_NO_THROW(inst.proposer(0, 1, [](std::uint64_t) {}));
}

}  // namespace
}  // namespace omega
