// Fault-tolerant replicated-disk registers: crash-tolerance and staleness
// semantics, plus Ω running over them.
#include "san/replicated_san.h"

#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/scenario.h"

namespace omega {
namespace {

Layout tiny_layout(GroupId& g) {
  LayoutBuilder b;
  g = b.add_array("X", 4, OwnerRule::kRowOwner, false);
  return b.build();
}

TEST(ReplicatedSan, ReadsBackLatestWrite) {
  GroupId g = 0;
  ReplicatedSanConfig cfg;
  cfg.num_disks = 3;
  ReplicatedSanMemory mem(tiny_layout(g), 4, cfg);
  const Cell c = mem.layout().cell(g, 1);
  mem.write(1, c, 7);
  mem.write(1, c, 8);
  EXPECT_EQ(mem.read(0, c), 8u);
  EXPECT_EQ(mem.stale_reads(), 0u);
}

TEST(ReplicatedSan, SurvivesDiskCrashes) {
  GroupId g = 0;
  ReplicatedSanConfig cfg;
  cfg.num_disks = 3;
  ReplicatedSanMemory mem(tiny_layout(g), 4, cfg);
  const Cell c = mem.layout().cell(g, 0);
  mem.write(0, c, 41);
  mem.crash_disk(0);
  EXPECT_EQ(mem.read(1, c), 41u);  // value survives on the other replicas
  mem.write(0, c, 42);             // writes keep landing on survivors
  mem.crash_disk(1);
  EXPECT_EQ(mem.read(1, c), 42u);
  EXPECT_EQ(mem.disks_alive(), 1u);
}

TEST(ReplicatedSan, CannotCrashLastDisk) {
  GroupId g = 0;
  ReplicatedSanConfig cfg;
  cfg.num_disks = 2;
  ReplicatedSanMemory mem(tiny_layout(g), 4, cfg);
  mem.crash_disk(0);
  EXPECT_THROW(mem.crash_disk(1), InvariantViolation);
  mem.crash_disk(0);  // re-crashing a dead disk is a no-op
}

TEST(ReplicatedSan, OmissionsDivergeReplicasButNeverLoseWrites) {
  GroupId g = 0;
  ReplicatedSanConfig cfg;
  cfg.num_disks = 3;
  cfg.omission_prob = 0.4;
  cfg.seed = 5;
  ReplicatedSanMemory mem(tiny_layout(g), 4, cfg);
  const Cell c = mem.layout().cell(g, 2);
  std::uint64_t last_seen = 0;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    mem.write(2, c, v);
    const std::uint64_t got = mem.read(0, c);
    // Staleness may return an older value, but never a never-written one
    // and never older than what a previous *fresh* read established as the
    // anchor guarantee floor... the weak but sound checks:
    EXPECT_GE(got, 1u);
    EXPECT_LE(got, v);
    last_seen = std::max(last_seen, got);
  }
  EXPECT_EQ(last_seen, 500u);  // fresh values do get through
  EXPECT_GT(mem.divergent_writes(), 0u);
  EXPECT_GT(mem.stale_reads(), 0u);
}

TEST(ReplicatedSan, NoOmissionsMeansAtomic) {
  GroupId g = 0;
  ReplicatedSanConfig cfg;
  cfg.num_disks = 4;
  cfg.omission_prob = 0.0;
  ReplicatedSanMemory mem(tiny_layout(g), 4, cfg);
  const Cell c = mem.layout().cell(g, 3);
  for (std::uint64_t v = 1; v <= 200; ++v) {
    mem.write(3, c, v);
    ASSERT_EQ(mem.read(0, c), v);
  }
  EXPECT_EQ(mem.stale_reads(), 0u);
  EXPECT_EQ(mem.divergent_writes(), 0u);
}

TEST(ReplicatedSan, AccessCostIsWorstLiveReplica) {
  GroupId g = 0;
  ReplicatedSanConfig cfg;
  cfg.num_disks = 2;
  cfg.network_latency = 1;
  cfg.service_time = 3;
  cfg.jitter_max = 0;
  ReplicatedSanMemory mem(tiny_layout(g), 4, cfg);
  const Cell c = mem.layout().cell(g, 0);
  EXPECT_EQ(mem.access_cost(c, true), 1 + 3);
  // Crash one disk: cost now reflects only the survivor (which queues).
  mem.crash_disk(0);
  EXPECT_GE(mem.access_cost(c, true), 1 + 3);
}

TEST(ReplicatedSanOmega, ConvergesDespiteDiskCrashesMidRun) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.seed = 14;
  ReplicatedSanConfig san;
  san.num_disks = 3;
  auto d = make_scenario(cfg, replicated_san_factory(san));
  auto& mem = dynamic_cast<ReplicatedSanMemory&>(d->memory());
  d->run_until(100000);
  mem.crash_disk(0);
  d->run_until(200000);
  mem.crash_disk(2);
  d->run_until(500000);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged) << "2 of 3 disks dead: registers must survive";
  EXPECT_TRUE(d->plan().is_correct(rep.leader));
}

TEST(ReplicatedSanOmega, Fig2ToleratesPersistentOmissions) {
  // Algorithm 1's PROGRESS counter advances every couple of steps, so a
  // stale read would need a replica to miss ~dozens of consecutive writes —
  // convergence survives heavy persistent omission rates.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.seed = 15;
  ReplicatedSanConfig san;
  san.num_disks = 3;
  san.omission_prob = 0.2;
  auto d = make_scenario(cfg, replicated_san_factory(san));
  d->run_until(500000);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged);
  auto& mem = dynamic_cast<ReplicatedSanMemory&>(d->memory());
  EXPECT_GT(mem.divergent_writes(), 0u) << "omissions should have occurred";
}

}  // namespace
}  // namespace omega
