// LeaderService: the downstream facade — agreed view, change callbacks,
// fail-over notifications on real threads.
#include "rt/leader_service.h"

#include <gtest/gtest.h>

#include <condition_variable>

namespace omega {
namespace {

RtConfig service_config(std::uint32_t n) {
  RtConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = n;
  cfg.tick_us = 2000;
  cfg.pace_us = 100;
  return cfg;
}

/// Waits (up to timeout) until the service's agreed view is a live id.
ProcessId await_agreed(LeaderService& svc, std::int64_t timeout_us) {
  const auto deadline = svc.driver().now_us() + timeout_us;
  while (svc.driver().now_us() < deadline) {
    const ProcessId a = svc.current();
    if (a != kNoProcess) return a;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return kNoProcess;
}

TEST(LeaderService, AgreedViewEmerges) {
  LeaderService svc(service_config(3));
  svc.start();
  const ProcessId agreed = await_agreed(svc, 20000000);
  svc.stop();
  ASSERT_NE(agreed, kNoProcess);
  EXPECT_LT(agreed, 3u);
  EXPECT_FALSE(svc.driver().failed()) << svc.driver().failure_message();
}

TEST(LeaderService, CallbacksFireOnTransitions) {
  LeaderService svc(service_config(3));
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::pair<ProcessId, ProcessId>> seen;
  svc.subscribe([&](ProcessId prev, ProcessId cur, std::int64_t) {
    std::lock_guard<std::mutex> lock(m);
    seen.emplace_back(prev, cur);
    cv.notify_all();
  });
  svc.start();
  const ProcessId first = await_agreed(svc, 20000000);
  ASSERT_NE(first, kNoProcess);
  {
    std::unique_lock<std::mutex> lock(m);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return !seen.empty(); }));
    EXPECT_EQ(seen.front().second, first);
  }
  // Kill the leader: expect a transition away from it (possibly through a
  // kNoProcess disagreement phase).
  svc.driver().crash(first);
  {
    std::unique_lock<std::mutex> lock(m);
    const bool moved = cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return !seen.empty() && seen.back().second != first &&
             seen.back().second != kNoProcess;
    });
    EXPECT_TRUE(moved) << "no fail-over transition observed";
    if (moved) {
      EXPECT_NE(seen.back().second, first);
    }
  }
  svc.stop();
  EXPECT_GE(svc.transitions(), 2u);
}

TEST(LeaderService, UnsubscribeStopsDelivery) {
  LeaderService svc(service_config(2));
  std::atomic<int> calls{0};
  const auto token =
      svc.subscribe([&](ProcessId, ProcessId, std::int64_t) { ++calls; });
  svc.unsubscribe(token);
  svc.start();
  (void)await_agreed(svc, 10000000);
  svc.stop();
  EXPECT_EQ(calls.load(), 0);
}

TEST(LeaderService, IsLeaderMatchesLocalView) {
  LeaderService svc(service_config(2));
  svc.start();
  const ProcessId agreed = await_agreed(svc, 10000000);
  ASSERT_NE(agreed, kNoProcess);
  EXPECT_TRUE(svc.is_leader(agreed));
  svc.stop();
}

TEST(LeaderService, RejectsBadUsage) {
  LeaderService svc(service_config(2));
  EXPECT_THROW(svc.subscribe(nullptr), InvariantViolation);
  svc.unsubscribe(12345);  // unknown token: no-op
}

}  // namespace
}  // namespace omega
