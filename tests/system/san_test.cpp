// SAN substrate: Ω runs unmodified over simulated network-attached disks —
// the deployment the paper motivates. Latency stretches time; the properties
// survive.
#include "san/san_memory.h"

#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/scenario.h"

namespace omega {
namespace {

TEST(SimDisk, QueueingAddsWait) {
  SimDisk disk(/*network=*/2, /*service=*/3, /*jitter=*/0, /*seed=*/1);
  // Back-to-back ops at the same instant queue behind each other.
  EXPECT_EQ(disk.serve(100, false), 2 + 3);      // idle: network + service
  EXPECT_EQ(disk.serve(100, true), 2 + 3 + 3);   // waits one service time
  EXPECT_EQ(disk.serve(100, false), 2 + 6 + 3);  // waits two
  EXPECT_EQ(disk.stats().reads, 2u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().total_queue_wait, 3u + 6u);
}

TEST(SimDisk, IdleDiskDoesNotQueue) {
  SimDisk disk(1, 2, 0, 1);
  (void)disk.serve(0, false);
  EXPECT_EQ(disk.serve(1000, false), 1 + 2);  // long idle: no wait
}

TEST(SimDisk, RejectsBadParameters) {
  EXPECT_THROW(SimDisk(-1, 1, 0, 1), InvariantViolation);
  EXPECT_THROW(SimDisk(0, 0, 0, 1), InvariantViolation);
}

TEST(SanMemory, StripesAcrossDisks) {
  LayoutBuilder b;
  const GroupId g = b.add_array("X", 8, OwnerRule::kRowOwner, false);
  SanConfig cfg;
  cfg.num_disks = 4;
  SanMemory mem(b.build(), 8, cfg);
  // Touch every cell once; all four disks should have served ops.
  for (std::uint32_t i = 0; i < 8; ++i) {
    (void)mem.access_cost(mem.layout().cell(g, i), false);
  }
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(mem.disk_stats(d).reads, 2u) << "disk " << d;
  }
}

TEST(SanOmega, ConvergesOverDisks) {
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 5;
  cfg.world = World::kAwb;
  cfg.seed = 6;
  auto d = make_scenario(cfg, san_memory_factory(SanConfig{}));
  d->run_until(400000);
  const auto rep = d->metrics().convergence(d->plan());
  ASSERT_TRUE(rep.converged);
  EXPECT_TRUE(d->plan().is_correct(rep.leader));
  // Disks actually served the traffic.
  auto& san = dynamic_cast<SanMemory&>(d->memory());
  std::uint64_t ops = 0;
  for (std::uint32_t k = 0; k < san.num_disks(); ++k) {
    ops += san.disk_stats(k).reads + san.disk_stats(k).writes;
  }
  EXPECT_GT(ops, 1000u);
}

TEST(SanOmega, WriteEfficiencySurvivesDiskLatency) {
  // Theorem 3 does not care where the registers live: eventually one writer.
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.seed = 6;
  auto d = make_scenario(cfg, san_memory_factory(SanConfig{}));
  d->run_until(500000);
  ASSERT_TRUE(d->metrics().convergence(d->plan()).converged);
  const auto before = d->memory().instr().snapshot();
  d->run_for(150000);
  const auto after = d->memory().instr().snapshot();
  EXPECT_EQ(diff_writers(before, after).distinct_writers, 1u);
}

TEST(SanOmega, HigherLatencySlowsConvergence) {
  // Same world/seed, two disk speeds: the slow array must not converge
  // faster wall-clock than the fast one by any large margin — and typically
  // converges later. (Assert the weak, robust direction: the slow run's
  // access volume within the same horizon is smaller.)
  ScenarioConfig cfg;
  cfg.algo = AlgoKind::kWriteEfficient;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.seed = 9;
  SanConfig fast;
  fast.network_latency = 1;
  fast.service_time = 1;
  fast.jitter_max = 0;
  SanConfig slow = fast;
  slow.service_time = 20;
  slow.network_latency = 20;
  auto df = make_scenario(cfg, san_memory_factory(fast));
  auto ds = make_scenario(cfg, san_memory_factory(slow));
  df->run_until(300000);
  ds->run_until(300000);
  const auto sf = df->memory().instr().snapshot();
  const auto ss = ds->memory().instr().snapshot();
  EXPECT_LT(ss.total_reads + ss.total_writes,
            sf.total_reads + sf.total_writes);
  EXPECT_TRUE(df->metrics().convergence(df->plan()).converged);
  EXPECT_TRUE(ds->metrics().convergence(ds->plan()).converged);
}

}  // namespace
}  // namespace omega
