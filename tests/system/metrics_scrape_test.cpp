// v1.3 METRICS scraped off a LIVE three-process SmrNode cluster: drive
// real appends through the elected leader, then assert the pipeline's
// stage histograms (seal->decide, decide->apply, ack-flush) and frame
// counters carry non-zero evidence of that traffic — the whole
// registry->wire->client chain, not a loopback encode test.
//
// fork() happens before any thread exists in this binary (gtest
// discovery runs each TEST in its own process), so the children may
// safely construct the full threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "smr/node.h"

namespace omega::smr {
namespace {

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr svc::GroupId kGid = 47;

NodeTopology make_topology() {
  NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(NodeEndpoint{i, "127.0.0.1", pick_free_port(),
                                      pick_free_port()});
  }
  return topo;
}

[[noreturn]] void run_node(const NodeTopology& base, std::uint32_t self) {
  try {
    NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 1000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    SmrNode node(topo, scfg);
    SmrSpec spec;
    spec.n = 3;
    spec.capacity = 512;
    spec.window = 4;
    spec.max_batch = 8;
    node.add_log(kGid, spec);
    node.start();
    for (;;) {
      if (node.service().failed()) {
        std::fprintf(stderr, "node %u FAILED: %s\n", self,
                     node.service().failure_message().c_str());
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node %u threw: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

class Cluster {
 public:
  Cluster() : topo_(make_topology()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const pid_t pid = fork();
      if (pid == 0) run_node(topo_, i);
      pids_.push_back(pid);
    }
  }

  ~Cluster() {
    for (const pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  const NodeTopology& topo() const { return topo_; }

  void connect(net::Client& c, std::uint32_t node, int deadline_s = 60) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    for (;;) {
      try {
        c.connect("127.0.0.1", topo_.nodes[node].serve_port, 2000);
        c.enable_auto_reconnect();
        return;
      } catch (const net::NetError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  ProcessId await_leader(int deadline_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint32_t node = 0; node < 3; ++node) {
        try {
          net::Client c;
          connect(c, node, 5);
          const auto r = c.leader(kGid);
          if (r.ok() && r.view.leader != kNoProcess) return r.view.leader;
        } catch (const net::NetError&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return kNoProcess;
  }

 private:
  NodeTopology topo_;
  std::vector<pid_t> pids_;
};

std::int64_t metric_value(const net::Client::MetricsResult& m,
                          const std::string& name) {
  const obs::MetricSample* s = m.find(name);
  return s != nullptr ? s->value : 0;
}

TEST(MetricsScrape, LiveClusterExposesStageLatencies) {
  Cluster cluster;

  const ProcessId leader = cluster.await_leader(120);
  ASSERT_NE(leader, kNoProcess);
  const std::uint32_t leader_node = cluster.topo().node_of(leader);

  // Drive real traffic through the leader so the stage histograms fill.
  constexpr std::uint64_t kAppends = 30;
  {
    net::Client c;
    cluster.connect(c, leader_node);
    for (std::uint64_t i = 0; i < kAppends; ++i) {
      const auto r =
          c.append_retry(kGid, /*client=*/5, /*seq=*/1 + i, 700 + i, 15000);
      ASSERT_TRUE(r.ok()) << "append " << i << " status "
                          << static_cast<int>(r.status);
    }
  }

  // Scrape the leader: every pipeline stage must have observed the
  // traffic above. The scrape itself pages over the wire via
  // Client::metrics(), so this also exercises v1.3 end to end.
  net::Client c;
  cluster.connect(c, leader_node);
  const auto m = c.metrics();
  ASSERT_TRUE(m.ok());
  ASSERT_FALSE(m.metrics.empty());

  EXPECT_GE(metric_value(m, "net.frames.append"),
            static_cast<std::int64_t>(kAppends));
  EXPECT_GT(metric_value(m, "net.frames.metrics"), 0);
  EXPECT_GT(metric_value(m, "svc.sweeps"), 0);

  for (const char* hist_name :
       {"smr.seal_to_decide_ns", "smr.decide_to_apply_ns",
        "net.ack_flush_ns", "svc.sweep_ns"}) {
    const obs::MetricSample* h = m.find(hist_name);
    ASSERT_NE(h, nullptr) << hist_name;
    EXPECT_EQ(h->kind, obs::MetricSample::Kind::kHistogram) << hist_name;
    EXPECT_GT(h->value, 0) << hist_name << " recorded nothing";
    EXPECT_GT(h->sum, 0u) << hist_name << " latency sum is zero";
    EXPECT_GT(h->quantile(0.5), 0u) << hist_name;
  }

  // The mirror transport pushed those commits to both followers.
  EXPECT_GT(metric_value(m, "mirror.pushed_frames"), 0);

  // A follower scrapes too, and it saw the mirror stream (acked frames
  // on the leader; pushes from the follower's own transport may be idle,
  // but its registry and METRICS path must serve regardless).
  const std::uint32_t follower_node = (leader_node + 1) % 3;
  net::Client fc;
  cluster.connect(fc, follower_node);
  const auto fm = fc.metrics();
  ASSERT_TRUE(fm.ok());
  ASSERT_FALSE(fm.metrics.empty());
  EXPECT_GT(metric_value(fm, "svc.sweeps"), 0);
  const obs::MetricSample* sweep = fm.find("svc.sweep_ns");
  ASSERT_NE(sweep, nullptr);
  EXPECT_GT(sweep->value, 0);
}

}  // namespace
}  // namespace omega::smr
