// Durability end to end: three OS processes, each an SmrNode journaling
// to its own WAL directory with quorum-acked commits. The leader is
// SIGKILL'd mid-load and the SAME node is restarted in place from its
// WAL — it must replay, rejoin via the mirror resync, and converge on a
// log identical to the survivors', with the pre-crash prefix intact.
//
// fork() happens before any thread exists in this binary (gtest runs
// each TEST in its own process), so children may build the full
// threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <stdlib.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "smr/node.h"
#include "wal/wal_io.h"

namespace omega::smr {
namespace {

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr svc::GroupId kGid = 42;

NodeTopology make_topology() {
  NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(NodeEndpoint{i, "127.0.0.1", pick_free_port(),
                                      pick_free_port()});
  }
  return topo;
}

SmrSpec test_spec() {
  SmrSpec spec;
  spec.n = 3;
  spec.capacity = 512;
  spec.window = 4;
  spec.max_batch = 8;
  spec.quorum_ack = true;  // an ack means "on a quorum of WALs"
  return spec;
}

/// Child body: build the node over its WAL dir, run until killed.
[[noreturn]] void run_node(const NodeTopology& base, std::uint32_t self,
                           const std::string& wal_dir) {
  try {
    NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 1000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    wal::WalOptions wopts;
    wopts.dir = wal_dir;
    SmrNode node(topo, scfg, {}, wopts);
    node.add_log(kGid, test_spec());
    node.start();
    for (;;) {
      if (node.service().failed()) {
        std::fprintf(stderr, "node %u FAILED: %s\n", self,
                     node.service().failure_message().c_str());
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node %u threw: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

class DurableCluster {
 public:
  DurableCluster() : topo_(make_topology()) {
    char tmpl[] = "/tmp/omega_walsys_XXXXXX";
    EXPECT_NE(::mkdtemp(tmpl), nullptr);
    base_dir_ = tmpl;
    for (std::uint32_t i = 0; i < 3; ++i) {
      wal_dirs_.push_back(base_dir_ + "/node" + std::to_string(i));
      pids_.push_back(spawn(i));
    }
  }

  ~DurableCluster() {
    for (const pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  const NodeTopology& topo() const { return topo_; }
  const std::string& wal_dir(std::uint32_t node) const {
    return wal_dirs_[node];
  }

  void kill_node(std::uint32_t node) {
    ::kill(pids_[node], SIGKILL);
    ::waitpid(pids_[node], nullptr, 0);
    pids_[node] = -1;
  }

  /// The restart under test: the SAME identity, the SAME WAL directory.
  void restart_node(std::uint32_t node) {
    ASSERT_EQ(pids_[node], -1) << "restart of a live node";
    pids_[node] = spawn(node);
  }

  bool alive(std::uint32_t node) const { return pids_[node] > 0; }

  void connect(net::Client& c, std::uint32_t node, int deadline_s = 60) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    for (;;) {
      try {
        c.connect("127.0.0.1", topo_.nodes[node].serve_port, 2000);
        c.enable_auto_reconnect();
        return;
      } catch (const net::NetError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  ProcessId await_leader(int deadline_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint32_t node = 0; node < 3; ++node) {
        if (!alive(node)) continue;
        try {
          net::Client c;
          connect(c, node, 5);
          const auto r = c.leader(kGid);
          if (r.ok() && r.view.leader != kNoProcess &&
              alive(topo_.node_of(r.view.leader))) {
            return r.view.leader;
          }
        } catch (const net::NetError&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return kNoProcess;
  }

  /// Blocks until `node` serves a log with commit_index >= want; returns
  /// the entries (empty on timeout — the caller asserts).
  std::vector<std::uint64_t> await_log(std::uint32_t node,
                                       std::uint64_t want,
                                       int deadline_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        net::Client c;
        connect(c, node, 5);
        const auto page = c.read_log(kGid, 0, 256);
        if (page.status == net::Status::kOk && page.commit_index >= want) {
          return page.entries;
        }
      } catch (const net::NetError&) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return {};
  }

 private:
  pid_t spawn(std::uint32_t node) {
    const pid_t pid = fork();
    if (pid == 0) run_node(topo_, node, wal_dirs_[node]);
    return pid;
  }

  NodeTopology topo_;
  std::string base_dir_;
  std::vector<std::string> wal_dirs_;
  std::vector<pid_t> pids_;
};

void append_until_committed(DurableCluster& cluster, std::uint64_t client,
                            std::uint64_t seq, std::uint64_t cmd,
                            int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const ProcessId leader = cluster.await_leader(deadline_s);
    ASSERT_NE(leader, kNoProcess) << "no leader elected in time";
    const std::uint32_t node = cluster.topo().node_of(leader);
    try {
      net::Client c;
      cluster.connect(c, node, 10);
      const auto r = c.append_retry(kGid, client, seq, cmd, 15000);
      if (r.ok()) return;
    } catch (const net::NetError&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  FAIL() << "append of " << cmd << " did not commit in " << deadline_s
         << "s";
}

TEST(WalRestart, SigkilledLeaderRejoinsFromItsWal) {
  DurableCluster cluster;

  // Phase 1: commit a prefix under quorum_ack — every acked entry is on
  // a quorum of WALs by construction.
  ASSERT_NE(cluster.await_leader(120), kNoProcess);
  constexpr std::uint64_t kFirst = 12;
  for (std::uint64_t i = 0; i < kFirst; ++i) {
    append_until_committed(cluster, /*client=*/1, /*seq=*/1 + i, 500 + i,
                           120);
  }

  // Phase 2: SIGKILL the leader's node mid-life. Its WAL directory must
  // already hold segments (the journal is written as commits happen, not
  // at shutdown — SIGKILL leaves no chance for a parting flush).
  const ProcessId first_leader = cluster.await_leader(60);
  ASSERT_NE(first_leader, kNoProcess);
  const std::uint32_t crashed = cluster.topo().node_of(first_leader);
  cluster.kill_node(crashed);
  {
    wal::PosixWalIo io;
    EXPECT_FALSE(io.list(cluster.wal_dir(crashed)).empty())
        << "no WAL segments written before the crash";
  }

  // Phase 3: the survivors elect a new leader and keep committing.
  for (std::uint64_t i = 0; i < 4; ++i) {
    append_until_committed(cluster, /*client=*/2, /*seq=*/1 + i, 900 + i,
                           180);
  }

  // Phase 4: restart the SAME node over the SAME WAL directory. It must
  // replay, resync, and serve the full log — including both the prefix
  // it saw before dying and the entries committed while it was down.
  cluster.restart_node(crashed);
  constexpr std::uint64_t kTotal = kFirst + 4;
  const std::vector<std::uint64_t> rejoined =
      cluster.await_log(crashed, kTotal, 180);
  ASSERT_GE(rejoined.size(), kTotal)
      << "restarted node " << crashed << " never served the full log";

  // Phase 5: with the rejoined node counted, appends still commit (it
  // participates in the quorum again, not just serves reads)...
  append_until_committed(cluster, /*client=*/3, /*seq=*/1, 1300, 180);

  // ...and all three logs are identical: prefix, crash-window entries,
  // post-rejoin tail.
  std::vector<std::uint64_t> logs[3];
  for (std::uint32_t node = 0; node < 3; ++node) {
    logs[node] = cluster.await_log(node, kTotal + 1, 120);
    ASSERT_GE(logs[node].size(), kTotal + 1)
        << "node " << node << " never converged";
  }
  for (std::uint64_t i = 0; i < kFirst; ++i) {
    EXPECT_EQ(logs[crashed][i], 500 + i)
        << "restarted node rewrote its own pre-crash prefix at " << i;
  }
  const std::size_t common = std::min(
      {logs[0].size(), logs[1].size(), logs[2].size()});
  for (std::size_t i = 0; i < common; ++i) {
    EXPECT_EQ(logs[0][i], logs[1][i]) << "logs diverge at index " << i;
    EXPECT_EQ(logs[1][i], logs[2][i]) << "logs diverge at index " << i;
  }
}

}  // namespace
}  // namespace omega::smr
