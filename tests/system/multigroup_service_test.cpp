// MultiGroupLeaderService: K independent election groups multiplexed onto a
// small worker pool — every group must converge to a correct agreed leader,
// the cached view must carry fail-over through epoch bumps, and membership
// may churn while the pool runs.
#include "svc/multigroup_service.h"

#include <gtest/gtest.h>

#include "rt/leader_service.h"

namespace omega::svc {
namespace {

SvcConfig small_pool(std::uint32_t workers) {
  SvcConfig cfg;
  cfg.workers = workers;
  cfg.tick_us = 500;
  cfg.wheel_slot_us = 256;
  cfg.wheel_slots = 128;
  cfg.ops_per_sweep = 8;
  // This box may have a single core: a tiny pace keeps the control thread
  // and both workers scheduled regularly.
  cfg.pace_us = 50;
  return cfg;
}

constexpr std::int64_t kAwaitUs = 30000000;  // generous: single-core CI box

/// Eventually, all live processes of `gid` report the same live leader as
/// the cache. Retries: right after the first cached agreement a process may
/// still flip its view once before the group settles (Ω is *eventually*
/// accurate), so a single snapshot can transiently disagree.
void expect_unanimous(const MultiGroupLeaderService& svc, GroupId gid) {
  const std::int64_t deadline = svc.now_us() + kAwaitUs;
  GroupStatus st = svc.status(gid);
  for (;;) {
    bool settled = st.view.leader != kNoProcess;
    for (std::size_t p = 0; settled && p < st.local_views.size(); ++p) {
      if (st.crashed[p]) continue;
      settled = st.local_views[p] == st.view.leader;
    }
    if (settled || svc.now_us() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    st = svc.status(gid);
  }
  ASSERT_NE(st.view.leader, kNoProcess) << "group " << gid << " unsettled";
  for (std::size_t p = 0; p < st.local_views.size(); ++p) {
    if (st.crashed[p]) continue;
    EXPECT_EQ(st.local_views[p], st.view.leader)
        << "group " << gid << " p" << p << " disagrees with the cache";
  }
}

TEST(MultiGroupService, ManyGroupsConvergeOnSmallPool) {
  constexpr std::uint32_t kGroups = 24;
  MultiGroupLeaderService svc(small_pool(2));
  for (GroupId gid = 0; gid < kGroups; ++gid) svc.add_group(gid);
  EXPECT_EQ(svc.num_groups(), kGroups);
  svc.start();
  for (GroupId gid = 0; gid < kGroups; ++gid) {
    const ProcessId leader = svc.await_leader(gid, kAwaitUs);
    ASSERT_NE(leader, kNoProcess) << "group " << gid << " never converged";
    EXPECT_LT(leader, 3u);
    expect_unanimous(svc, gid);
    EXPECT_GE(svc.leader(gid).epoch, 1u)
        << "agreement must have bumped the epoch at least once";
  }
  // Convergence can beat the first monitor timeout (heartbeat stepping is
  // enough for warm-start agreement); monitors fire every tick forever, so
  // wait for the wheel to deliver at least one wakeup before stopping.
  const std::int64_t fires_deadline = svc.now_us() + kAwaitUs;
  while (svc.stats().timer_fires == 0 && svc.now_us() < fires_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  svc.stop();
  EXPECT_FALSE(svc.failed()) << svc.failure_message();
  const SvcStats stats = svc.stats();
  EXPECT_GT(stats.steps, 0u);
  EXPECT_GT(stats.sweeps, 0u);
  EXPECT_GT(stats.timer_fires, 0u) << "monitor wakeups must flow via wheel";
}

TEST(MultiGroupService, MixedAlgorithmsShareOnePool) {
  MultiGroupLeaderService svc(small_pool(2));
  svc.add_group(0, GroupSpec{AlgoKind::kWriteEfficient, 3});
  svc.add_group(1, GroupSpec{AlgoKind::kBounded, 3});
  svc.add_group(2, GroupSpec{AlgoKind::kStepClock, 2});
  svc.start();
  for (GroupId gid = 0; gid < 3; ++gid) {
    const ProcessId leader = svc.await_leader(gid, kAwaitUs);
    ASSERT_NE(leader, kNoProcess)
        << "group " << gid << " (" << static_cast<int>(gid) << ") stuck";
    expect_unanimous(svc, gid);
  }
  svc.stop();
  EXPECT_FALSE(svc.failed()) << svc.failure_message();
}

TEST(MultiGroupService, CacheEpochInvalidationOnLeaderChange) {
  MultiGroupLeaderService svc(small_pool(2));
  for (GroupId gid = 0; gid < 4; ++gid) svc.add_group(gid);
  svc.start();
  for (GroupId gid = 0; gid < 4; ++gid) {
    ASSERT_NE(svc.await_leader(gid, kAwaitUs), kNoProcess) << "group " << gid;
  }

  // Re-read until the view is agreed: the cache can transiently flip back
  // to kNoProcess right after await_leader during early convergence.
  const GroupId victim = 2;
  LeaderView before = svc.leader(victim);
  while (before.leader == kNoProcess) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    before = svc.leader(victim);
  }
  const LeaderView bystander_before = svc.leader(victim + 1);

  svc.crash(victim, before.leader);

  // The cached view must move off the crashed leader to a new live one,
  // and every published change must bump the epoch (fencing invalidation).
  const std::int64_t deadline = svc.now_us() + kAwaitUs;
  LeaderView after = svc.leader(victim);
  while ((after.leader == before.leader || after.leader == kNoProcess) &&
         svc.now_us() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    after = svc.leader(victim);
  }
  ASSERT_NE(after.leader, kNoProcess) << "no fail-over within timeout";
  EXPECT_NE(after.leader, before.leader);
  EXPECT_GT(after.epoch, before.epoch)
      << "a leader change must invalidate cached epochs";
  expect_unanimous(svc, victim);

  // Groups on other shards are isolated from the fail-over.
  const LeaderView bystander_after = svc.leader(victim + 1);
  EXPECT_EQ(bystander_after, bystander_before)
      << "unrelated group's cached view must not churn";
  svc.stop();
  EXPECT_FALSE(svc.failed()) << svc.failure_message();
}

TEST(MultiGroupService, MembershipChurnWhileRunning) {
  MultiGroupLeaderService svc(small_pool(2));
  for (GroupId gid = 0; gid < 4; ++gid) svc.add_group(gid);
  svc.start();
  for (GroupId gid = 0; gid < 4; ++gid) {
    ASSERT_NE(svc.await_leader(gid, kAwaitUs), kNoProcess);
  }

  // Live add: the new group is picked up by its shard's worker.
  svc.add_group(100);
  EXPECT_EQ(svc.num_groups(), 5u);
  EXPECT_NE(svc.await_leader(100, kAwaitUs), kNoProcess)
      << "group added while running never converged";

  // Live remove: the id disappears from the frontend; the rest keep going.
  EXPECT_TRUE(svc.remove_group(1));
  EXPECT_FALSE(svc.has_group(1));
  EXPECT_THROW(svc.leader(1), InvariantViolation);
  EXPECT_FALSE(svc.remove_group(1));
  EXPECT_EQ(svc.num_groups(), 4u);
  EXPECT_NE(svc.await_leader(0, kAwaitUs), kNoProcess);
  svc.stop();
  EXPECT_FALSE(svc.failed()) << svc.failure_message();
}

TEST(MultiGroupService, ReuseIdWithFewerProcesses) {
  // A removed id may be re-added with a smaller n while stale timer-wheel
  // entries for the old (larger) group are still filed; they must be
  // discarded, not dereference past the new group's executors.
  MultiGroupLeaderService svc(small_pool(1));
  svc.add_group(7, GroupSpec{AlgoKind::kWriteEfficient, 6});
  svc.start();
  ASSERT_NE(svc.await_leader(7, kAwaitUs), kNoProcess);  // timers armed
  EXPECT_TRUE(svc.remove_group(7));
  svc.add_group(7, GroupSpec{AlgoKind::kWriteEfficient, 2});
  const ProcessId leader = svc.await_leader(7, kAwaitUs);
  ASSERT_NE(leader, kNoProcess) << "re-added group never converged";
  EXPECT_LT(leader, 2u);
  svc.stop();
  EXPECT_FALSE(svc.failed()) << svc.failure_message();
}

TEST(MultiGroupService, RejectsBadUsage) {
  MultiGroupLeaderService svc(small_pool(1));
  svc.add_group(1);
  EXPECT_THROW(svc.add_group(1), InvariantViolation);
  EXPECT_THROW(svc.leader(99), InvariantViolation);
  EXPECT_THROW(svc.crash(1, 5), InvariantViolation);
  EXPECT_THROW(svc.crash(99, 0), InvariantViolation);
  EXPECT_THROW(MultiGroupLeaderService(SvcConfig{.workers = 0}),
               InvariantViolation);
}

TEST(MultiGroupService, LeaderServiceDelegatesFleets) {
  // rt/leader_service.h's fleet entry point hands multi-group work to svc.
  auto fleet = LeaderService::make_fleet(small_pool(2));
  ASSERT_NE(fleet, nullptr);
  for (GroupId gid = 0; gid < 6; ++gid) fleet->add_group(gid);
  fleet->start();
  for (GroupId gid = 0; gid < 6; ++gid) {
    EXPECT_NE(fleet->await_leader(gid, kAwaitUs), kNoProcess)
        << "fleet group " << gid;
  }
  fleet->stop();
  EXPECT_FALSE(fleet->failed()) << fleet->failure_message();
}

}  // namespace
}  // namespace omega::svc
