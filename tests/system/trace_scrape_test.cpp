// v1.4 TRACE_DUMP scraped off a LIVE three-process SmrNode cluster:
// drive real appends through the elected leader, scrape the flight
// recorder of the leader AND a follower over the wire, and assert the
// stitched result carries at least one append's causal chain across the
// process boundary, hops in monotone wall-clock order — the whole
// mint->propagate->record->scrape->stitch chain, not a loopback test.
//
// fork() happens before any thread exists in this binary (gtest
// discovery runs each TEST in its own process), so the children may
// safely construct the full threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/trace_stitch.h"
#include "smr/node.h"

namespace omega::smr {
namespace {

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

constexpr svc::GroupId kGid = 48;

NodeTopology make_topology() {
  NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(NodeEndpoint{i, "127.0.0.1", pick_free_port(),
                                      pick_free_port()});
  }
  return topo;
}

[[noreturn]] void run_node(const NodeTopology& base, std::uint32_t self) {
  try {
    NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 1000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    SmrNode node(topo, scfg);
    SmrSpec spec;
    spec.n = 3;
    spec.capacity = 512;
    spec.window = 4;
    spec.max_batch = 8;
    node.add_log(kGid, spec);
    node.start();
    for (;;) {
      if (node.service().failed()) {
        std::fprintf(stderr, "node %u FAILED: %s\n", self,
                     node.service().failure_message().c_str());
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node %u threw: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

class Cluster {
 public:
  Cluster() : topo_(make_topology()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const pid_t pid = fork();
      if (pid == 0) run_node(topo_, i);
      pids_.push_back(pid);
    }
  }

  ~Cluster() {
    for (const pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  const NodeTopology& topo() const { return topo_; }

  void connect(net::Client& c, std::uint32_t node, int deadline_s = 60) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    for (;;) {
      try {
        c.connect("127.0.0.1", topo_.nodes[node].serve_port, 2000);
        c.enable_auto_reconnect();
        return;
      } catch (const net::NetError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  ProcessId await_leader(int deadline_s) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint32_t node = 0; node < 3; ++node) {
        try {
          net::Client c;
          connect(c, node, 5);
          const auto r = c.leader(kGid);
          if (r.ok() && r.view.leader != kNoProcess) return r.view.leader;
        } catch (const net::NetError&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return kNoProcess;
  }

 private:
  NodeTopology topo_;
  std::vector<pid_t> pids_;
};

TEST(TraceScrape, AppendChainsStitchAcrossProcesses) {
  Cluster cluster;

  const ProcessId leader = cluster.await_leader(120);
  ASSERT_NE(leader, kNoProcess);
  const std::uint32_t leader_node = cluster.topo().node_of(leader);
  const std::uint32_t follower_node = (leader_node + 1) % 3;

  // Serial appends through the leader: each one mints a fresh trace id
  // and, being alone in its batch, lands as both first AND last id of
  // the sealed slot — every batch event joins it.
  constexpr std::uint64_t kAppends = 20;
  std::vector<std::uint64_t> minted;
  {
    net::Client c;
    cluster.connect(c, leader_node);
    for (std::uint64_t i = 0; i < kAppends; ++i) {
      const auto r =
          c.append_retry(kGid, /*client=*/6, /*seq=*/1 + i, 800 + i, 15000);
      ASSERT_TRUE(r.ok()) << "append " << i << " status "
                          << static_cast<int>(r.status);
      EXPECT_NE(r.trace, 0u) << "v1.4 ack must echo the minted trace id";
      EXPECT_EQ(r.trace, c.last_trace_id());
      minted.push_back(r.trace);
    }
  }

  // Give the mirror + follower apply a moment to drain, then scrape the
  // leader and one follower over the wire (paged v1.4 TRACE_DUMP).
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  std::vector<obs::NodeTrace> nodes;
  for (const std::uint32_t node : {leader_node, follower_node}) {
    net::Client c;
    cluster.connect(c, node);
    net::Client::TraceDumpResult d = c.trace_dump();
    ASSERT_EQ(d.status, net::Status::kOk) << "node " << node;
    EXPECT_FALSE(d.records.empty()) << "node " << node;
    nodes.push_back(
        obs::NodeTrace{node, d.realtime_offset_ns, std::move(d.records)});
  }

  const std::vector<obs::StitchedTrace> traces = obs::stitch(nodes);
  ASSERT_FALSE(traces.empty());

  // At least one minted id must stitch into a cross-process chain:
  // enqueue + seal + decide + apply on the leader, apply on the
  // follower, hops in monotone wall-clock order.
  std::uint64_t cross_process = 0;
  for (const auto& t : traces) {
    // Every stitched trace is internally ordered by wall clock.
    for (std::size_t i = 1; i < t.hops.size(); ++i) {
      EXPECT_GE(t.hops[i].wall_ns, t.hops[i - 1].wall_ns);
    }
    bool is_minted = false;
    for (const std::uint64_t id : minted) is_minted |= id == t.trace_id;
    if (!is_minted) continue;
    const obs::TraceHop* enq =
        obs::find_hop(t, obs::TraceEvent::kAppendEnqueue, leader_node);
    if (enq == nullptr) continue;
    const bool leader_chain =
        obs::hop_ns(t, obs::TraceEvent::kAppendEnqueue,
                    obs::TraceEvent::kBatchSeal, leader_node,
                    leader_node) >= 0 &&
        obs::hop_ns(t, obs::TraceEvent::kBatchSeal,
                    obs::TraceEvent::kSlotDecide, leader_node,
                    leader_node) >= 0 &&
        obs::hop_ns(t, obs::TraceEvent::kSlotDecide,
                    obs::TraceEvent::kBatchApply, leader_node,
                    leader_node) >= 0;
    const obs::TraceHop* remote_apply =
        obs::find_hop(t, obs::TraceEvent::kBatchApply, follower_node);
    if (leader_chain && remote_apply != nullptr) {
      ++cross_process;
      // The follower's apply is causally after the leader's enqueue;
      // the wall-clock anchors must keep that order across processes.
      EXPECT_GE(remote_apply->wall_ns, enq->wall_ns)
          << "trace " << t.trace_id
          << ": follower apply placed before the leader enqueue";
    }
  }
  EXPECT_GE(cross_process, 1u)
      << "no minted append stitched leader chain + follower apply across "
         "the process boundary";
}

}  // namespace
}  // namespace omega::smr
