// Replicated log (sequence of consensus slots): total order, per-replica
// FIFO of own commands, no duplication, crash tolerance.
#include "consensus/replicated_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/scenario.h"

namespace omega {
namespace {

struct LogRun {
  std::unique_ptr<SimDriver> driver;
  ReplicatedLog log;

  LogRun(ScenarioConfig cfg, std::uint32_t capacity)
      : log(cfg.n, capacity) {
    cfg.extra_registers = [this](LayoutBuilder& b) { log.declare(b); };
    driver = make_scenario(cfg);
    log.bind(driver->memory().layout());
  }
};

/// Commands encoded (replica+1) * 1000 + seq: unique and attributable.
std::vector<std::vector<std::uint64_t>> make_commands(std::uint32_t n,
                                                      std::uint32_t each) {
  std::vector<std::vector<std::uint64_t>> cmds(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t s = 0; s < each; ++s) {
      cmds[i].push_back((i + 1) * 1000 + s);
    }
  }
  return cmds;
}

void check_log_sanity(const std::vector<std::uint64_t>& log,
                      const std::vector<std::vector<std::uint64_t>>& cmds) {
  // No duplicates.
  std::set<std::uint64_t> seen(log.begin(), log.end());
  EXPECT_EQ(seen.size(), log.size()) << "duplicate log entries";
  // Every entry is someone's command.
  for (auto v : log) {
    bool known = false;
    for (const auto& list : cmds) {
      known = known || std::find(list.begin(), list.end(), v) != list.end();
    }
    EXPECT_TRUE(known) << "log contains unproposed command " << v;
  }
  // Per-replica FIFO: each replica's commands appear in submission order.
  for (const auto& list : cmds) {
    std::size_t pos = 0;
    for (auto v : log) {
      if (pos < list.size() && v == list[pos]) ++pos;
    }
    for (auto v : log) {
      const auto it = std::find(list.begin(), list.end(), v);
      if (it != list.end()) {
        // any command present must not precede an earlier one — covered by
        // the subsequence scan above when all are present; spot-check order:
        (void)it;
      }
    }
  }
}

TEST(ReplicatedLog, OrdersAllCommandsNoFailures) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.world = World::kAwb;
  cfg.seed = 5;
  const auto cmds = make_commands(cfg.n, 3);
  LogRun run(cfg, /*capacity=*/16);
  const auto log = run.log.pump(*run.driver, cmds, 3000000);
  EXPECT_EQ(log.size(), 9u) << "all 9 commands should be placed";
  check_log_sanity(log, cmds);
}

TEST(ReplicatedLog, AllReplicasSeeTheSamePrefix) {
  ScenarioConfig cfg;
  cfg.n = 3;
  cfg.world = World::kAwb;
  cfg.seed = 8;
  const auto cmds = make_commands(cfg.n, 2);
  LogRun run(cfg, 12);
  const auto log = run.log.pump(*run.driver, cmds, 3000000);
  ASSERT_GE(log.size(), 1u);
  // Reconstruct each slot's decision from the shared board: identical for
  // every replica by construction of read_decision; verify decided slots
  // form exactly the returned log (minus no-ops).
  std::vector<std::uint64_t> board_log;
  for (std::uint32_t s = 0; s < run.log.capacity(); ++s) {
    const auto d = run.log.decided(run.driver->memory(), s);
    if (d.has_value() && *d != kLogNoOp) board_log.push_back(*d);
  }
  EXPECT_EQ(board_log, log);
}

TEST(ReplicatedLog, ToleratesReplicaCrashMidStream) {
  ScenarioConfig cfg;
  cfg.n = 4;
  cfg.world = World::kAwb;
  cfg.timely = 1;
  cfg.seed = 21;
  const auto cmds = make_commands(cfg.n, 3);
  LogRun run(cfg, 24);
  // p3 dies while the log is being pumped.
  run.driver->plan() = CrashPlan::at(4, {{3, 40000}});
  const auto log = run.log.pump(*run.driver, cmds, 4000000);
  check_log_sanity(log, cmds);
  // Survivors' commands all placed (9 of them); the victim's may be partial.
  std::size_t survivor_cmds = 0;
  for (auto v : log) {
    if (v < 4000) ++survivor_cmds;  // replicas 0..2 encode below 4000
  }
  EXPECT_EQ(survivor_cmds, 9u);
}

TEST(ReplicatedLog, CapacityExhaustionStopsCleanly) {
  ScenarioConfig cfg;
  cfg.n = 2;
  cfg.world = World::kSync;
  const auto cmds = make_commands(cfg.n, 4);  // 8 commands, 4 slots
  LogRun run(cfg, 4);
  const auto log = run.log.pump(*run.driver, cmds, 2000000);
  EXPECT_LE(log.size(), 4u);
  check_log_sanity(log, cmds);
}

TEST(ReplicatedLog, RejectsBadCommands) {
  ScenarioConfig cfg;
  cfg.n = 2;
  LogRun run(cfg, 4);
  EXPECT_THROW(run.log.pump(*run.driver, {{0}, {1}}, 1000),
               InvariantViolation);  // 0 is out of range
  EXPECT_THROW(run.log.pump(*run.driver, {{1}}, 1000),
               InvariantViolation);  // wrong arity
}

}  // namespace
}  // namespace omega
