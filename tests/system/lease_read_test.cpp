// Lease safety across a real partition: three OS processes with leases
// enabled, SIGSTOP freezes the leader (the classic "partitioned but not
// dead" box), the survivors elect a new leader and commit past it, then
// SIGCONT lets the ex-leader run again. A READ that was already sitting
// in the frozen leader's socket buffer is processed the instant it
// resumes — while its cached view still says "I lead" at the OLD epoch —
// and MUST come back kNotLeader: its lease is time-expired (no quorum
// ack landed during the freeze) and epoch-fenced, so the memory-speed
// path refuses rather than serving a value the survivors have already
// overtaken. After the mirror rejoin, reads with the new session floor
// must answer with the post-partition state, never the stale one.
//
// fork() happens before any thread exists (gtest runs each TEST in its
// own process), so the children may build the full threaded runtime.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>

#include <chrono>
#include <thread>
#include <vector>

#include "net/client.h"
#include "smr/node.h"

namespace omega::smr {
namespace {

/// Picks `n` DISTINCT free ports by holding every probe socket open until
/// all are bound (closing between picks lets the kernel hand the same
/// ephemeral port out twice, and a node then dies on EADDRINUSE).
std::vector<std::uint16_t> pick_free_ports(std::size_t n) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    socklen_t len = sizeof addr;
    EXPECT_EQ(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

constexpr svc::GroupId kGid = 61;
// The TTL must be comfortably SHORTER than the enforced freeze below:
// lease safety is conditional on ttl < detection + election time, and
// the test makes that premise true by construction before resuming.
constexpr std::int64_t kLeaseTtlUs = 400000;

NodeTopology make_topology() {
  const auto ports = pick_free_ports(6);
  NodeTopology topo;
  for (std::uint32_t i = 0; i < 3; ++i) {
    topo.nodes.push_back(
        NodeEndpoint{i, "127.0.0.1", ports[2 * i], ports[2 * i + 1]});
  }
  return topo;
}

SmrSpec test_spec() {
  SmrSpec spec;
  spec.n = 3;
  spec.capacity = 512;
  spec.window = 4;
  spec.max_batch = 8;
  spec.lease_ttl_us = kLeaseTtlUs;
  spec.lease_skew_us = 20000;
  return spec;
}

[[noreturn]] void run_node(const NodeTopology& base, std::uint32_t self) {
  try {
    NodeTopology topo = base;
    topo.self = self;
    svc::SvcConfig scfg;
    scfg.workers = 1;
    scfg.tick_us = 1000;
    scfg.pace_us = 200;
    scfg.max_pace_us = 2000;
    SmrNode node(topo, scfg);
    node.add_log(kGid, test_spec());
    node.start();
    for (;;) {
      if (node.service().failed()) {
        std::fprintf(stderr, "node %u FAILED: %s\n", self,
                     node.service().failure_message().c_str());
        _exit(2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "node %u threw: %s\n", self, e.what());
    _exit(1);
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

class Cluster {
 public:
  Cluster() : topo_(make_topology()) {
    for (std::uint32_t i = 0; i < 3; ++i) {
      const pid_t pid = fork();
      if (pid == 0) run_node(topo_, i);
      pids_.push_back(pid);
    }
  }

  ~Cluster() {
    for (const pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (const pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }

  const NodeTopology& topo() const { return topo_; }

  void freeze(std::uint32_t node) {
    ::kill(pids_[node], SIGSTOP);
    frozen_ = node;
  }
  void thaw(std::uint32_t node) {
    ::kill(pids_[node], SIGCONT);
    frozen_ = ~0u;
  }

  void connect(net::Client& c, std::uint32_t node, int deadline_s = 60) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
    for (;;) {
      try {
        c.connect("127.0.0.1", topo_.nodes[node].serve_port, 2000);
        return;
      } catch (const net::NetError&) {
        if (std::chrono::steady_clock::now() >= deadline) throw;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  /// Leader as reported by a live (unfrozen) node, skipping frozen boxes
  /// and leaders hosted on them. kNoProcess on timeout.
  ProcessId await_leader(int deadline_s) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
    while (std::chrono::steady_clock::now() < deadline) {
      for (std::uint32_t node = 0; node < 3; ++node) {
        if (node == frozen_) continue;
        try {
          net::Client c;
          connect(c, node, 5);
          const auto r = c.leader(kGid);
          if (r.ok() && r.view.leader != kNoProcess &&
              topo_.node_of(r.view.leader) != frozen_) {
            return r.view.leader;
          }
        } catch (const net::NetError&) {
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return kNoProcess;
  }

 private:
  NodeTopology topo_;
  std::vector<pid_t> pids_;
  std::uint32_t frozen_ = ~0u;
};

void append_until_committed(Cluster& cluster, std::uint64_t client,
                            std::uint64_t seq, std::uint64_t cmd,
                            int deadline_s) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(deadline_s);
  while (std::chrono::steady_clock::now() < deadline) {
    const ProcessId leader = cluster.await_leader(deadline_s);
    ASSERT_NE(leader, kNoProcess) << "no leader elected in time";
    const std::uint32_t node = cluster.topo().node_of(leader);
    try {
      net::Client c;
      cluster.connect(c, node, 10);
      const auto r = c.append_retry(kGid, client, seq, cmd, 15000);
      if (r.ok()) return;
      std::fprintf(stderr, "append %llu via node %u: status %d\n",
                   static_cast<unsigned long long>(cmd), node,
                   static_cast<int>(r.status));
    } catch (const net::NetError& e) {
      std::fprintf(stderr, "append %llu via node %u: net error %s\n",
                   static_cast<unsigned long long>(cmd), node, e.what());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  FAIL() << "append of " << cmd << " did not commit in " << deadline_s << "s";
}

TEST(LeaseRead, PartitionedExLeaderRefusesItsStaleLease) {
  Cluster cluster;

  // Phase 1: elect, commit key 600 at position 0, and wait until the
  // leader serves it on the memory-speed lease path.
  const ProcessId old_leader = cluster.await_leader(120);
  ASSERT_NE(old_leader, kNoProcess);
  append_until_committed(cluster, /*client=*/1, /*seq=*/1, /*cmd=*/600, 120);
  const std::uint32_t old_node = cluster.topo().node_of(old_leader);
  net::Client reader;
  cluster.connect(reader, old_node);
  std::uint64_t old_epoch = 0;
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
      // The leader may briefly bounce between processes while Ω settles;
      // follow it until a lease read lands (the node we hold the
      // connection to may answer as a follower meanwhile).
      const auto r = reader.read(kGid, /*key=*/600, /*min_index=*/0, 15000);
      if (r.status == net::Status::kLeaseRead) {
        EXPECT_EQ(r.index, 1u);
        old_epoch = r.view.epoch;
        break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "lease never became valid at the leader (last status "
          << static_cast<int>(r.status) << ")";
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  // Re-resolve: the lease answer is the authority on who leads now.
  const std::uint32_t frozen_node = old_node;

  // Phase 2: freeze the leader. The probe READ is sent while it is
  // frozen, so the request is already in its socket buffer when it
  // resumes — it will be the first thing the IO thread serves, before
  // any mirror traffic can teach the node about the new view.
  cluster.freeze(frozen_node);
  const auto t_freeze = std::chrono::steady_clock::now();
  const std::uint64_t probe_id = reader.read_async(kGid, /*key=*/600);

  // Phase 3: the survivors elect a new leader and commit key 700 at
  // position 1 — state the frozen box has never seen.
  ProcessId new_leader = kNoProcess;
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(180);
    for (;;) {
      new_leader = cluster.await_leader(180);
      ASSERT_NE(new_leader, kNoProcess) << "no failover leader";
      if (cluster.topo().node_of(new_leader) != frozen_node) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "survivors kept naming the frozen leader";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  append_until_committed(cluster, /*client=*/2, /*seq=*/1, /*cmd=*/700, 180);

  // Make the premise of lease safety true by construction: hold the
  // freeze until the old lease is long past its TTL on the wall clock
  // (CLOCK_MONOTONIC keeps running while a process is stopped).
  const auto min_freeze = std::chrono::microseconds(3 * kLeaseTtlUs);
  const auto elapsed = std::chrono::steady_clock::now() - t_freeze;
  if (elapsed < min_freeze) {
    std::this_thread::sleep_for(min_freeze - elapsed);
  }

  // Phase 4: resume. The buffered probe is served under the ex-leader's
  // stale "I lead" view — and must be REFUSED: the lease is both
  // time-expired (no quorum ack landed during the freeze) and about to
  // be epoch-fenced. Any answered status here is a stale read.
  cluster.thaw(frozen_node);
  const auto probe = reader.next_read_result(/*timeout_ms=*/120000);
  ASSERT_TRUE(probe.has_value()) << "probe read lost";
  EXPECT_EQ(probe->req_id, probe_id);
  EXPECT_EQ(probe->result.status, net::Status::kNotLeader)
      << "ex-leader must refuse its stale lease, got status "
      << static_cast<int>(probe->result.status);
  EXPECT_FALSE(probe->result.ok());

  // Phase 5: after the rejoin, reads at the ex-leader with the new
  // session floor (position 1 committed => floor 2) must answer with the
  // post-partition state — kIndexRead once its apply passes the fence,
  // or kLeaseRead only under a lease re-acquired at a NEWER epoch. A
  // stale answer (index != 2 for key 700, or a lease at the old epoch)
  // is the safety violation this test exists to catch.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    bool answered = false;
    while (!answered) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "ex-leader never served the post-partition state";
      const auto r = reader.read(kGid, /*key=*/700, /*min_index=*/2, 15000);
      if (r.ok()) {
        EXPECT_EQ(r.index, 2u) << "stale read of key 700 (status "
                               << static_cast<int>(r.status) << ")";
        if (r.status == net::Status::kLeaseRead) {
          EXPECT_GT(r.view.epoch, old_epoch)
              << "a lease read after failover must carry a newer epoch";
        }
        answered = true;
      } else {
        ASSERT_TRUE(r.status == net::Status::kNotLeader ||
                    r.status == net::Status::kOverloaded)
            << "unexpected status " << static_cast<int>(r.status);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }
}

}  // namespace
}  // namespace omega::smr
